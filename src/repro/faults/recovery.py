"""§6 executed: retries, heartbeat failure detection, partial restart.

The paper's fault-tolerance story for the parallel streaming transfer has
three tiers, and this module drives all of them:

1. **Transient channel faults** retry in place — exponential backoff with
   seeded jitter (:class:`RetryPolicy`), so a blip never aborts a transfer.
2. **A dead SQL worker** triggers a *partial restart*: the coordinator's
   :meth:`~repro.transfer.coordinator.StreamSession.restart_plan` names the
   failed worker and the k ML workers paired with it, and only those
   endpoints restart.  The replacement worker re-streams its partition from
   the beginning with the same per-channel block sequence numbers; receivers
   drop already-accepted blocks, so the ML boundary sees each logical row
   exactly once.  Re-sent bytes are charged to the separate ``stream.retry``
   ledger counter — the fault-free byte accounting stays invariant.
3. **Exhausted budgets** escalate: :class:`RetriesExhaustedError` fails the
   session, and the pipeline either restarts from scratch (``max_attempts``)
   or degrades to the materialize-to-DFS path
   (``run_insql_stream(degrade_to_dfs=True)``).

Failure *detection* is heartbeat-based: streaming workers beat once per
block via :meth:`RecoveryManager.heartbeat`; :meth:`stale_workers` reports
everyone whose last beat is older than the timeout.  The clock is
injectable, so detection is testable without waiting.
"""

import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import ChannelTimeoutError, RetriesExhaustedError
from repro.common.rng import derive_seed_stable, make_rng
from repro.faults.injector import FaultInjector
from repro.sim.clock import WALL, Clock


def _clock_callables(clock, sleep) -> tuple:
    """Accept a :class:`repro.sim.clock.Clock` *or* the legacy
    ``(clock, sleep)`` callable pair the tests inject; an explicit sleep
    callable always wins over the clock object's."""
    if isinstance(clock, Clock):
        return clock, clock.now, (clock.sleep if sleep is time.sleep else sleep)
    return WALL, clock, sleep


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    Delay of attempt ``i`` (0-based) is ``base * multiplier**i``, capped at
    ``max_delay_s``, then multiplied by ``1 + U(0, jitter)`` drawn from a
    per-key RNG stream — deterministic for a given (seed, key, attempt) and
    decorrelated across channels, which is what jitter is for.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.050
    jitter: float = 0.5
    seed: int = 0

    def delay_s(self, attempt: int, key: str = "") -> float:
        delay = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        if self.jitter:
            rng = make_rng(derive_seed_stable(self.seed, "retry", key, attempt))
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


@dataclass(frozen=True)
class MLRecoveryEvent:
    """One ML-stage recovery action, in escalation-ladder order.

    ``tier`` is one of ``resume_checkpoint`` (training retried in place
    from the latest checkpoint), ``replay_cache`` (input rebuilt from a §5
    cached view / recode map), ``replay_query`` (input rebuilt by re-running
    the rewritten transform query), ``full_restart`` (ladder exhausted —
    the pipeline-tier attempt loop or DFS degradation takes over).
    """

    job_id: str
    tier: str
    reason: str


@dataclass(frozen=True)
class RestartEvent:
    """One executed partial restart, for assertions and reporting."""

    session_id: str
    sql_worker_id: int
    ml_worker_indexes: tuple[int, ...]
    reason: str
    attempt: int  # 1-based restart count for this worker


@dataclass
class _SessionRecoveryState:
    heartbeats: dict[int, float] = field(default_factory=dict)
    restarts: dict[int, int] = field(default_factory=dict)  # worker -> count


class RecoveryManager:
    """Executes retries and partial restarts on behalf of the coordinator.

    Installing one on a coordinator switches the streaming sender into the
    resilient protocol (sequenced blocks, heartbeats, send retries, partial
    restart on worker death).  With a disabled injector and no real faults
    the resilient protocol is byte-for-byte ledger-invariant with the seed
    path — that invariance is asserted by the chaos tests.
    """

    def __init__(
        self,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        restart_backoff: RetryPolicy | None = None,
        max_partial_restarts: int = 3,
        heartbeat_timeout_s: float = 30.0,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.injector = injector or FaultInjector.disabled()
        self.retry_policy = retry_policy or RetryPolicy()
        self.restart_backoff = restart_backoff or RetryPolicy(max_attempts=1)
        self.max_partial_restarts = max_partial_restarts
        self.heartbeat_timeout_s = heartbeat_timeout_s
        _, self._clock, self._sleep = _clock_callables(clock, sleep)
        self._lock = threading.Lock()
        self._sessions: dict[str, _SessionRecoveryState] = {}
        self.restart_events: list[RestartEvent] = []
        self.ml_recovery_events: list[MLRecoveryEvent] = []
        self.send_retries = 0

    # ------------------------------------------------------------ heartbeat

    def heartbeat(self, session_id: str, worker_id: int) -> None:
        """Record one liveness beat (streaming workers beat per block)."""
        now = self._clock()
        with self._lock:
            state = self._sessions.setdefault(session_id, _SessionRecoveryState())
            state.heartbeats[worker_id] = now

    def last_heartbeat(self, session_id: str, worker_id: int) -> float | None:
        with self._lock:
            state = self._sessions.get(session_id)
            if state is None:
                return None
            return state.heartbeats.get(worker_id)

    def stale_workers(self, session_id: str, now: float | None = None) -> list[int]:
        """Workers whose last beat is older than ``heartbeat_timeout_s`` —
        the coordinator's §6 failure detector."""
        if now is None:
            now = self._clock()
        with self._lock:
            state = self._sessions.get(session_id)
            if state is None:
                return []
            return sorted(
                worker_id
                for worker_id, beat in state.heartbeats.items()
                if now - beat > self.heartbeat_timeout_s
            )

    # -------------------------------------------------------------- retries

    def send_with_retry(self, send, channel_key: str) -> None:
        """Run one channel send, retrying transient timeouts with backoff.

        ``send`` is a zero-argument callable performing the actual send;
        the injector's transient faults are raised *before* the send takes
        effect, so a retry never duplicates data.  Exhausting the budget
        raises :class:`RetriesExhaustedError`.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                self.injector.check_send(channel_key)
                send()
                return
            except ChannelTimeoutError as exc:
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise RetriesExhaustedError(
                        f"send on {channel_key} failed {attempt} times: {exc}"
                    ) from exc
                with self._lock:
                    self.send_retries += 1
                self._sleep(policy.delay_s(attempt - 1, key=channel_key))

    # ------------------------------------------------------ partial restart

    def restarts_of(self, session_id: str, worker_id: int) -> int:
        with self._lock:
            state = self._sessions.get(session_id)
            return 0 if state is None else state.restarts.get(worker_id, 0)

    def begin_partial_restart(
        self, coordinator, session_id: str, worker_id: int, reason: str
    ) -> dict:
        """Authorize and plan the restart of one failed SQL worker.

        Consumes the coordinator's §6 ``restart_plan`` — the failed worker
        plus exactly its paired ML workers — records the event, applies the
        restart backoff, and returns the plan.  Raises
        :class:`RetriesExhaustedError` once this worker's restart budget is
        spent (the caller then fails the session, and recovery escalates to
        the pipeline tier).
        """
        with self._lock:
            state = self._sessions.setdefault(session_id, _SessionRecoveryState())
            attempt = state.restarts.get(worker_id, 0) + 1
            if attempt > self.max_partial_restarts:
                raise RetriesExhaustedError(
                    f"SQL worker {worker_id} of {session_id!r} failed "
                    f"{attempt} times; partial-restart budget "
                    f"({self.max_partial_restarts}) exhausted: {reason}"
                )
            state.restarts[worker_id] = attempt
        plan = coordinator.plan_partial_restart(session_id, worker_id, reason)
        event = RestartEvent(
            session_id=session_id,
            sql_worker_id=worker_id,
            ml_worker_indexes=tuple(plan["restart_ml_workers"]),
            reason=reason,
            attempt=attempt,
        )
        with self._lock:
            self.restart_events.append(event)
        self._sleep(
            self.restart_backoff.delay_s(attempt - 1, key=f"{session_id}/{worker_id}")
        )
        return plan

    # ------------------------------------------------- ML-stage escalation

    def ml_stage_ladder(self, cache_warm: bool) -> tuple[str, ...]:
        """The §6 escalation order for a *training-stage* fault.

        Resume-from-checkpoint is tier 0 and runs inside
        ``MLSystem.run_job`` (the dataset is still in memory there); faults
        that escape it reach the pipeline, which walks this ladder:
        rebuild the input from the §5 caches when they are warm, else
        re-run the rewritten transform query, else hand back to the
        full-restart attempt loop.
        """
        tiers = ("replay_cache",) if cache_warm else ()
        return tiers + ("replay_query", "full_restart")

    def record_ml_recovery(self, job_id: str, tier: str, reason: str) -> None:
        """Log one executed ML-stage recovery action."""
        with self._lock:
            self.ml_recovery_events.append(
                MLRecoveryEvent(job_id=job_id, tier=tier, reason=reason)
            )

    def ml_recoveries_of(self, job_id: str) -> list[MLRecoveryEvent]:
        with self._lock:
            return [e for e in self.ml_recovery_events if e.job_id == job_id]

    # -------------------------------------------------------------- summary

    def monitor_actions(self) -> list[dict]:
        """Partial restarts initiated by a :class:`LivenessMonitor` (rather
        than by a sender noticing its own failure)."""
        with self._lock:
            return [
                {
                    "session_id": e.session_id,
                    "sql_worker_id": e.sql_worker_id,
                    "reason": e.reason,
                }
                for e in self.restart_events
                if "liveness monitor" in e.reason
            ]

    def summary(self) -> dict:
        """Recovery activity totals (for benchmarks and reports)."""
        with self._lock:
            return {
                "send_retries": self.send_retries,
                "partial_restarts": len(self.restart_events),
                "ml_recoveries": len(self.ml_recovery_events),
                "injected": dict(self.injector.counts),
            }


class LivenessMonitor:
    """The coordinator-side §6 failure detector, made *active*.

    PR 2 detection was passive: :meth:`RecoveryManager.stale_workers` only
    reported staleness when somebody asked.  This monitor asks — every
    ``interval_s`` it sweeps the heartbeat table of every live session and
    turns each stale worker into a proactive
    :meth:`~repro.transfer.coordinator.Coordinator.plan_partial_restart`
    call, so the restart plan exists before the dead sender's peers time
    out.  Each (session, worker, beat-timestamp) is flagged at most once:
    a worker that resumes beating and goes stale again is re-flagged, but a
    still-stale worker is not restarted repeatedly.

    ``clock``/``sleep`` are injectable and :meth:`sweep` is public, so tests
    drive detection deterministically without real waiting; :meth:`start`
    runs the production daemon thread.
    """

    def __init__(
        self,
        coordinator,
        recovery: RecoveryManager,
        interval_s: float = 0.5,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.coordinator = coordinator
        self.recovery = recovery
        self.interval_s = interval_s
        self._clockobj, self._clock, self._sleep = _clock_callables(clock, sleep)
        self._flagged: set[tuple[str, int, float]] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.actions: list[dict] = []

    def sweep(self, now: float | None = None) -> list[dict]:
        """One detection pass; returns the restart plans it initiated."""
        from repro.common.errors import TransferError

        if now is None:
            now = self._clock()
        initiated: list[dict] = []
        try:
            live = self.coordinator.live_sessions()
        except TransferError:
            return initiated  # deposed/killed coordinator: nothing to sweep
        for session_id in live:
            for worker_id in self.recovery.stale_workers(session_id, now=now):
                beat = self.recovery.last_heartbeat(session_id, worker_id)
                key = (session_id, worker_id, beat)
                if key in self._flagged:
                    continue
                self._flagged.add(key)
                reason = (
                    f"heartbeat of SQL worker {worker_id} stale for > "
                    f"{self.recovery.heartbeat_timeout_s}s (liveness monitor)"
                )
                try:
                    # The budgeted path: records the RestartEvent and stops
                    # restarting a worker whose budget is spent.
                    plan = self.recovery.begin_partial_restart(
                        self.coordinator, session_id, worker_id, reason
                    )
                except TransferError:
                    continue  # session closed, coordinator deposed mid-sweep,
                    # or this worker's restart budget is exhausted
                action = {
                    "session_id": session_id,
                    "worker_id": worker_id,
                    "plan": plan,
                }
                initiated.append(action)
                self.actions.append(action)
        return initiated

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def run() -> None:
            while not self._clockobj.wait_until(self._stop, self.interval_s):
                try:
                    self.sweep()
                except Exception:
                    # The detector must never take the coordinator down.
                    continue

        self._thread = self._clockobj.spawn(run, name="liveness-monitor")

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            # The join is a non-clock wait: step out of the managed set so a
            # virtual-time monitor can reach its next tick and observe stop.
            with self._clockobj.unmanaged():
                thread.join(timeout=2.0)
