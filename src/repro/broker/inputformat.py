"""ML-side ingestion from a broker topic: one split per partition.

Required job configuration: ``broker.topic`` property and a ``broker``
object; optional ``broker.group`` (consumer group, default ``"ml"``) and
``broker.timeout_s``.  Resuming a failed job under the same group continues
from committed offsets — the at-least-once recovery path.
"""

from dataclasses import dataclass

from repro.broker.broker import MessageBroker
from repro.broker.consumer import BrokerConsumer
from repro.iofmt.inputformat import InputFormat, InputSplit, JobConf, RecordReader


@dataclass(frozen=True)
class BrokerSplit(InputSplit):
    """One topic partition."""

    topic: str
    partition: int

    def locations(self) -> tuple[str, ...]:
        return ()  # the broker is network-addressed; no placement preference

    def length(self) -> int:
        return 0  # unknown until consumed; readers report bytes_read


class BrokerRecordReader(RecordReader):
    """Drains one partition via a committing consumer."""

    def __init__(self, consumer: BrokerConsumer):
        self._consumer = consumer
        self.bytes_read = 0

    def __iter__(self):
        before = self._consumer.bytes_received
        for row in self._consumer:
            self.bytes_read = self._consumer.bytes_received - before
            yield row


class BrokerInputFormat(InputFormat):
    """Swap-in replacement for SQLStreamInputFormat backed by the broker."""

    def get_splits(self, conf: JobConf, num_splits: int) -> list[InputSplit]:
        broker: MessageBroker = conf.require_object("broker")
        topic = conf.get("broker.topic")
        if not topic:
            raise ValueError("BrokerInputFormat needs the 'broker.topic' property")
        info = broker.topic_info(topic)
        return [BrokerSplit(topic, p) for p in range(info.num_partitions)]

    def create_record_reader(self, split: InputSplit, conf: JobConf) -> RecordReader:
        if not isinstance(split, BrokerSplit):
            raise TypeError(f"BrokerInputFormat cannot read {type(split).__name__}")
        broker: MessageBroker = conf.require_object("broker")
        consumer = BrokerConsumer(
            broker,
            split.topic,
            split.partition,
            group=conf.get("broker.group", "ml"),
            timeout_s=float(conf.get("broker.timeout_s", 30.0)),
            injector=conf.get_object("fault.injector"),
            budget=conf.get_object("budget"),
            retry_budget=conf.get_object("retry.budget"),
        )
        return BrokerRecordReader(consumer)
