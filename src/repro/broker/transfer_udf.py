"""SQL-side sender for the broker transfer path.

``TABLE(broker_transfer(input, 'topic' [, batch_rows]))`` — each SQL worker
produces its partition's rows into its own group of topic partitions (the
same n-groups-of-k layout as the §3 coordinator's matchmaking), then seals
them.  No coordinator is involved: the broker decouples the two systems in
time, so the ML job may start before, during, or after the SQL side runs.

``batch_rows`` (default 256) selects RowBlock framing: that many rows per
broker record; 1 reproduces the seed's one-record-per-row wire format.

The topic must exist with n*k partitions (the pipeline creates it); k is
derived from the partition count.
"""

from collections.abc import Iterable

from repro.broker.broker import MessageBroker
from repro.broker.producer import BrokerProducer
from repro.common.errors import TransferError
from repro.sql.types import DataType, Schema
from repro.sql.udf import TableUDF, UdfContext


def partition_group(total_partitions: int, num_workers: int, worker_id: int) -> list[int]:
    """The topic partitions owned by one SQL worker (even n-way grouping)."""
    base, extra = divmod(total_partitions, num_workers)
    start = worker_id * base + min(worker_id, extra)
    size = base + (1 if worker_id < extra else 0)
    return list(range(start, start + size))


DEFAULT_BATCH_ROWS = 256


class BrokerTransferUDF(TableUDF):
    """``TABLE(broker_transfer(input, topic [, batch_rows]))`` — produce rows
    to the broker as RowBlocks."""

    name = "broker_transfer"

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        self._parse_args(args)
        return Schema.of(
            ("worker_id", DataType.INT),
            ("rows_sent", DataType.BIGINT),
            ("bytes_sent", DataType.BIGINT),
        )

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        topic, batch_rows = self._parse_args(args)
        broker: MessageBroker = ctx.service("broker")
        info = broker.topic_info(topic)
        if info.num_partitions < ctx.num_workers:
            raise TransferError(
                f"topic {topic!r} has {info.num_partitions} partitions for "
                f"{ctx.num_workers} SQL workers; need at least one each"
            )
        group = partition_group(info.num_partitions, ctx.num_workers, ctx.worker_id)
        producer = BrokerProducer(
            broker,
            topic,
            partitions=group,
            batch_rows=batch_rows,
            # Deployment-wide retry budget (optional engine service): caps
            # append retries under overload so they fail fast instead of
            # amplifying the load on a struggling broker.
            retry_budget=ctx.services.get("retry_budget"),
            clock=ctx.services.get("clock"),
        )
        try:
            for row in rows:
                producer.send_row(row)
        finally:
            producer.close()
        yield (ctx.worker_id, producer.rows_sent, producer.bytes_sent)

    @staticmethod
    def _parse_args(args: tuple) -> tuple[str, int]:
        if not args:
            raise TransferError("broker_transfer needs a topic name")
        topic = str(args[0])
        batch_rows = DEFAULT_BATCH_ROWS
        if len(args) > 1 and args[1] is not None:
            batch_rows = int(args[1])
            if batch_rows < 1:
                raise TransferError(f"batch_rows must be >= 1, got {batch_rows}")
        return topic, batch_rows
