"""SQL-side sender for the broker transfer path.

``TABLE(broker_transfer(input, 'topic'))`` — each SQL worker produces its
partition's rows into its own group of topic partitions (the same
n-groups-of-k layout as the §3 coordinator's matchmaking), then seals them.
No coordinator is involved: the broker decouples the two systems in time,
so the ML job may start before, during, or after the SQL side runs.

The topic must exist with n*k partitions (the pipeline creates it); k is
derived from the partition count.
"""

from collections.abc import Iterable

from repro.broker.broker import MessageBroker
from repro.broker.producer import BrokerProducer
from repro.common.errors import TransferError
from repro.sql.types import DataType, Schema
from repro.sql.udf import TableUDF, UdfContext


def partition_group(total_partitions: int, num_workers: int, worker_id: int) -> list[int]:
    """The topic partitions owned by one SQL worker (even n-way grouping)."""
    base, extra = divmod(total_partitions, num_workers)
    start = worker_id * base + min(worker_id, extra)
    size = base + (1 if worker_id < extra else 0)
    return list(range(start, start + size))


class BrokerTransferUDF(TableUDF):
    """``TABLE(broker_transfer(input, topic))`` — produce rows to the broker."""

    name = "broker_transfer"

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        self._topic(args)
        return Schema.of(
            ("worker_id", DataType.INT),
            ("rows_sent", DataType.BIGINT),
            ("bytes_sent", DataType.BIGINT),
        )

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        topic = self._topic(args)
        broker: MessageBroker = ctx.service("broker")
        info = broker.topic_info(topic)
        if info.num_partitions < ctx.num_workers:
            raise TransferError(
                f"topic {topic!r} has {info.num_partitions} partitions for "
                f"{ctx.num_workers} SQL workers; need at least one each"
            )
        group = partition_group(info.num_partitions, ctx.num_workers, ctx.worker_id)
        producer = BrokerProducer(broker, topic, partitions=group)
        try:
            for row in rows:
                producer.send_row(row)
        finally:
            producer.close()
        yield (ctx.worker_id, producer.rows_sent, producer.bytes_sent)

    @staticmethod
    def _topic(args: tuple) -> str:
        if not args:
            raise TransferError("broker_transfer needs a topic name")
        return str(args[0])
