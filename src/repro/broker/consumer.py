"""Consumer client: offset-tracked, at-least-once reads of one partition."""

from repro.broker.broker import MessageBroker
from repro.transfer.buffers import block_logical_bytes, decode_block


class BrokerConsumer:
    """Consumes one topic partition on behalf of a consumer group.

    The consumption loop is the at-least-once pattern: records fetched
    beyond the committed offset are *re-delivered* if the consumer dies
    before :meth:`commit` — which is exactly the §8 failure guarantee the
    broker transfer buys over direct streaming.
    """

    def __init__(
        self,
        broker: MessageBroker,
        topic: str,
        partition: int,
        group: str,
        batch_size: int = 256,
        timeout_s: float = 30.0,
    ):
        self._broker = broker
        self._topic = topic
        self._partition = partition
        self._group = group
        self._batch_size = batch_size
        self._timeout_s = timeout_s
        self._position = broker.committed_offset(group, topic, partition)
        self.rows_received = 0
        self.bytes_received = 0

    @property
    def position(self) -> int:
        """Next offset this consumer will fetch."""
        return self._position

    def poll(self) -> tuple[list[tuple], bool]:
        """Fetch the next batch; returns (rows, end_of_partition).

        Each fetched record may be a RowBlock (one record, many rows) or a
        seed-style single-row record; both decode transparently.
        """
        chunk, next_offset, at_end = self._broker.fetch(
            self._topic,
            self._partition,
            self._position,
            max_records=self._batch_size,
            timeout=self._timeout_s,
        )
        self._position = next_offset
        self.bytes_received += sum(block_logical_bytes(c) for c in chunk)
        rows: list[tuple] = []
        for payload in chunk:
            rows.extend(decode_block(payload))
        self.rows_received += len(rows)
        return rows, at_end

    def commit(self) -> None:
        """Persist progress up to the current position."""
        self._broker.commit_offset(
            self._group, self._topic, self._partition, self._position
        )

    def __iter__(self):
        """Drain to end-of-partition, committing after each batch."""
        while True:
            rows, at_end = self.poll()
            yield from rows
            self.commit()
            if at_end:
                return
