"""Consumer client: offset-tracked, at-least-once reads of one partition."""

import pickle
import struct

from repro.broker.broker import MessageBroker
from repro.common.errors import RetriesExhaustedError, TransferError
from repro.transfer.buffers import block_logical_bytes, decode_block

#: What wire corruption actually looks like when a frame fails to decode:
#: a damaged pickle stream (UnpicklingError, or the EOF/Value/Key errors the
#: pickle VM raises on truncated or bit-flipped input), a mangled
#: length-prefix header (struct.error), or an inner TransferError from a
#: frame whose marker byte no longer matches any framing.  Anything else —
#: a TypeError from a decoder bug, say — is a defect and must propagate,
#: not silently loop through the retained log.
_CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    struct.error,
    EOFError,
    ValueError,
    KeyError,
    IndexError,
    MemoryError,
    TransferError,
)


class BrokerConsumer:
    """Consumes one topic partition on behalf of a consumer group.

    The consumption loop is the at-least-once pattern: records fetched
    beyond the committed offset are *re-delivered* if the consumer dies
    before :meth:`commit` — which is exactly the §8 failure guarantee the
    broker transfer buys over direct streaming.

    With a :class:`~repro.faults.injector.FaultInjector` installed the loop
    also *survives* §6's broker faults:

    * a **duplicate fetch** (consumer died after processing, before
      committing) re-delivers already-seen records; they are dropped by
      offset (``_delivered_through``) and counted, never yielded twice;
    * a **corrupted record** fails to decode and is refetched from the
      retained log at the same offset.

    All replay traffic charges the ``broker.retry`` ledger counter, keeping
    fault-free ``broker.out`` byte totals invariant.
    """

    def __init__(
        self,
        broker: MessageBroker,
        topic: str,
        partition: int,
        group: str,
        batch_size: int = 256,
        timeout_s: float = 30.0,
        injector=None,  # FaultInjector | None
        budget=None,  # Budget | None (end-to-end session deadline/cancel)
        retry_budget=None,  # RetryTokenBucket | None (shared refetch budget)
    ):
        self._broker = broker
        self._topic = topic
        self._partition = partition
        self._group = group
        self._batch_size = batch_size
        self._timeout_s = timeout_s
        self._injector = injector
        self._budget = budget
        self._retry_budget = retry_budget
        self._position = broker.committed_offset(group, topic, partition)
        #: offsets < this were already delivered to the application —
        #: the §6 dedup watermark for at-least-once replays
        self._delivered_through = self._position
        self.rows_received = 0
        self.bytes_received = 0
        self.duplicate_records = 0
        self.duplicate_bytes = 0
        self.refetched_records = 0

    @property
    def position(self) -> int:
        """Next offset this consumer will fetch."""
        return self._position

    def poll(self) -> tuple[list[tuple], bool]:
        """Fetch the next batch; returns (rows, end_of_partition).

        Each fetched record may be a RowBlock (one record, many rows) or a
        seed-style single-row record; both decode transparently.

        With a session budget attached the fetch wait derives from its
        remaining time (and raises typed on an expired/cancelled session
        before touching the broker at all).
        """
        site = f"{self._topic}/{self._partition}"
        timeout = self._timeout_s
        if self._budget is not None:
            self._budget.check(f"broker fetch {site}")
            timeout = self._budget.clamp(timeout)
        fetch_offset = self._position
        chunk, next_offset, at_end = self._broker.fetch(
            self._topic,
            self._partition,
            fetch_offset,
            max_records=self._batch_size,
            timeout=timeout,
        )
        self._position = next_offset
        rows: list[tuple] = []
        for i, payload in enumerate(chunk):
            offset = fetch_offset + i
            rows.extend(self._decode(payload, offset, site))
        self._delivered_through = next_offset
        self.rows_received += len(rows)
        if self._injector is not None and chunk:
            if self._injector.check_duplicate_fetch(site):
                self._absorb_redelivery(fetch_offset, len(chunk))
        return rows, at_end

    def _decode(self, payload: bytes, offset: int, site: str) -> list[tuple]:
        """Decode one record, refetching from the retained log when the
        in-flight copy arrives corrupted."""
        if self._injector is not None:
            payload = self._injector.corrupt_fetch(payload, f"{site}@{offset}")
        try:
            rows = decode_block(payload)
        except _CORRUPTION_ERRORS as damage:
            if self._retry_budget is not None and not self._retry_budget.try_acquire():
                raise RetriesExhaustedError(
                    f"refetch of corrupted record at {site}@{offset}: "
                    "deployment retry budget exhausted"
                ) from damage
            refetched, _next, _end = self._broker.fetch(
                self._topic,
                self._partition,
                offset,
                max_records=1,
                timeout=self._timeout_s,
                retry=True,
            )
            if not refetched:
                raise TransferError(
                    f"corrupted record at {site}@{offset} no longer retained"
                ) from None
            self.refetched_records += 1
            payload = refetched[0]
            rows = decode_block(payload)
        self.bytes_received += block_logical_bytes(payload)
        return rows

    def _absorb_redelivery(self, offset: int, count: int) -> None:
        """The injected at-least-once window: the broker re-delivers the
        batch just processed; every record is below the dedup watermark and
        is dropped + counted, so the application never sees a row twice."""
        replay, _next, _end = self._broker.fetch(
            self._topic,
            self._partition,
            offset,
            max_records=count,
            timeout=self._timeout_s,
            retry=True,
        )
        for payload in replay:
            # offset < self._delivered_through by construction: drop.
            self.duplicate_records += 1
            self.duplicate_bytes += block_logical_bytes(payload)

    def commit(self) -> None:
        """Persist progress up to the current position."""
        self._broker.commit_offset(
            self._group, self._topic, self._partition, self._position
        )

    def __iter__(self):
        """Drain to end-of-partition, committing after each batch."""
        while True:
            rows, at_end = self.poll()
            yield from rows
            self.commit()
            if at_end:
                return
