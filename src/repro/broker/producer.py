"""Producer client: row serialization and partition routing."""

from collections.abc import Sequence

from repro.broker.broker import MessageBroker
from repro.common.errors import TransferError
from repro.transfer.buffers import block_logical_bytes, encode_block, encode_row


class BrokerProducer:
    """Produces rows into a topic, round-robin or hash-partitioned.

    ``partitions`` restricts routing to a subset of the topic's partitions —
    the broker transfer assigns each SQL worker its own partition group, the
    same n-groups-of-k layout the §3 coordinator uses, so per-partition
    ordering reflects one worker's output order.

    ``batch_rows > 1`` turns on RowBlock framing: rows accumulate per
    partition and are appended as one block record per ``batch_rows`` rows
    (partial batches flushed by :meth:`flush`/:meth:`close`).  Routing is
    decided per row exactly as in the per-row path, so each partition
    carries the same row sequence at any batch size.  ``batch_rows=1``
    (the default) appends one record per row — the seed wire format.
    """

    def __init__(
        self,
        broker: MessageBroker,
        topic: str,
        partitions: list[int] | None = None,
        batch_rows: int = 1,
    ):
        self._broker = broker
        self._topic = topic
        info = broker.topic_info(topic)
        self._partitions = list(partitions) if partitions else list(range(info.num_partitions))
        if not self._partitions:
            raise TransferError("producer needs at least one partition")
        for p in self._partitions:
            if not 0 <= p < info.num_partitions:
                raise TransferError(f"partition {p} outside topic {topic!r}")
        if batch_rows < 1:
            raise TransferError(f"batch_rows must be >= 1, got {batch_rows}")
        self._batch_rows = batch_rows
        self._pending: dict[int, list[tuple]] = {p: [] for p in self._partitions}
        self._cursor = 0
        self.rows_sent = 0
        self.bytes_sent = 0

    def _route(self, key) -> int:
        if key is not None:
            return self._partitions[hash(key) % len(self._partitions)]
        partition = self._partitions[self._cursor % len(self._partitions)]
        self._cursor += 1
        return partition

    def send_row(self, row: tuple, key=None) -> int | None:
        """Produce one row; returns its record offset, or None when the row
        was buffered into a not-yet-flushed RowBlock.

        With ``key`` given, the partition is chosen by hash (per-key order);
        otherwise round-robin across this producer's partitions.
        """
        partition = self._route(key)
        if self._batch_rows <= 1:
            payload = encode_row(row)
            offset = self._broker.append(self._topic, partition, payload)
            self.rows_sent += 1
            self.bytes_sent += len(payload)
            return offset
        batch = self._pending[partition]
        batch.append(row)
        self.rows_sent += 1
        if len(batch) >= self._batch_rows:
            return self._flush_partition(partition)
        return None

    def send_many(self, rows: Sequence[tuple]) -> None:
        """Produce a batch of rows (round-robin routed per row)."""
        for row in rows:
            self.send_row(row)

    def _flush_partition(self, partition: int) -> int | None:
        batch = self._pending[partition]
        if not batch:
            return None
        payload = encode_block(batch)
        offset = self._broker.append(self._topic, partition, payload, rows=len(batch))
        self.bytes_sent += block_logical_bytes(payload)
        batch.clear()
        return offset

    def flush(self) -> None:
        """Append any partially filled RowBlocks (EOF flush)."""
        for partition in self._partitions:
            self._flush_partition(partition)

    def close(self) -> None:
        """Flush pending blocks, then seal this producer's partitions
        (end-of-stream markers)."""
        self.flush()
        for partition in self._partitions:
            self._broker.seal_partition(self._topic, partition)
