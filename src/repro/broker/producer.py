"""Producer client: row serialization and partition routing."""

from repro.broker.broker import MessageBroker
from repro.common.errors import TransferError
from repro.transfer.buffers import encode_row


class BrokerProducer:
    """Produces rows into a topic, round-robin or hash-partitioned.

    ``partitions`` restricts routing to a subset of the topic's partitions —
    the broker transfer assigns each SQL worker its own partition group, the
    same n-groups-of-k layout the §3 coordinator uses, so per-partition
    ordering reflects one worker's output order.
    """

    def __init__(
        self,
        broker: MessageBroker,
        topic: str,
        partitions: list[int] | None = None,
    ):
        self._broker = broker
        self._topic = topic
        info = broker.topic_info(topic)
        self._partitions = list(partitions) if partitions else list(range(info.num_partitions))
        if not self._partitions:
            raise TransferError("producer needs at least one partition")
        for p in self._partitions:
            if not 0 <= p < info.num_partitions:
                raise TransferError(f"partition {p} outside topic {topic!r}")
        self._cursor = 0
        self.rows_sent = 0
        self.bytes_sent = 0

    def send_row(self, row: tuple, key=None) -> int:
        """Produce one row; returns its offset.

        With ``key`` given, the partition is chosen by hash (per-key order);
        otherwise round-robin across this producer's partitions.
        """
        if key is not None:
            partition = self._partitions[hash(key) % len(self._partitions)]
        else:
            partition = self._partitions[self._cursor % len(self._partitions)]
            self._cursor += 1
        payload = encode_row(row)
        offset = self._broker.append(self._topic, partition, payload)
        self.rows_sent += 1
        self.bytes_sent += len(payload)
        return offset

    def close(self) -> None:
        """Seal this producer's partitions (end-of-stream markers)."""
        for partition in self._partitions:
            self._broker.seal_partition(self._topic, partition)
