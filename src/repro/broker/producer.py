"""Producer client: row serialization and partition routing."""

import time
from collections.abc import Sequence

from repro.broker.broker import MessageBroker
from repro.common.errors import (
    ChannelTimeoutError,
    RetriesExhaustedError,
    TransferError,
)
from repro.transfer.buffers import block_logical_bytes, encode_block, encode_row


class BrokerProducer:
    """Produces rows into a topic, round-robin or hash-partitioned.

    ``partitions`` restricts routing to a subset of the topic's partitions —
    the broker transfer assigns each SQL worker its own partition group, the
    same n-groups-of-k layout the §3 coordinator uses, so per-partition
    ordering reflects one worker's output order.

    ``batch_rows > 1`` turns on RowBlock framing: rows accumulate per
    partition and are appended as one block record per ``batch_rows`` rows
    (partial batches flushed by :meth:`flush`/:meth:`close`).  Routing is
    decided per row exactly as in the per-row path, so each partition
    carries the same row sequence at any batch size.  ``batch_rows=1``
    (the default) appends one record per row — the seed wire format.
    """

    def __init__(
        self,
        broker: MessageBroker,
        topic: str,
        partitions: list[int] | None = None,
        batch_rows: int = 1,
        injector=None,  # FaultInjector | None (§6 chaos on appends)
        retry_policy=None,  # RetryPolicy | None
        retry_budget=None,  # RetryTokenBucket | None (shared retry budget)
        sleep=time.sleep,
        clock=None,  # repro.sim.clock.Clock | None — retry backoff sleeps
    ):
        if clock is not None and sleep is time.sleep:
            sleep = clock.sleep
        self._broker = broker
        self._topic = topic
        info = broker.topic_info(topic)
        self._partitions = list(partitions) if partitions else list(range(info.num_partitions))
        if not self._partitions:
            raise TransferError("producer needs at least one partition")
        for p in self._partitions:
            if not 0 <= p < info.num_partitions:
                raise TransferError(f"partition {p} outside topic {topic!r}")
        if batch_rows < 1:
            raise TransferError(f"batch_rows must be >= 1, got {batch_rows}")
        self._batch_rows = batch_rows
        self._injector = injector
        self._retry_policy = retry_policy
        self._retry_budget = retry_budget
        self._sleep = sleep
        self._pending: dict[int, list[tuple]] = {p: [] for p in self._partitions}
        self._cursor = 0
        self.rows_sent = 0
        self.bytes_sent = 0
        self.append_retries = 0

    def _append(self, partition: int, payload: bytes, rows: int) -> int:
        """One broker append under the §6 retry discipline.

        Injected append faults fire *before* the broker commits the record,
        so a retry never duplicates data.  Without a retry policy a single
        transient failure propagates (the seed behaviour).  A shared
        :class:`~repro.runtime.budget.RetryTokenBucket` (when installed)
        gates every retry attempt: an overloaded deployment that has spent
        its global retry allowance fails fast with
        :class:`RetriesExhaustedError` instead of amplifying the load."""
        attempt = 0
        while True:
            try:
                if self._injector is not None:
                    self._injector.check_producer_append(
                        f"{self._topic}/{partition}"
                    )
                return self._broker.append(
                    self._topic, partition, payload, rows=rows
                )
            except ChannelTimeoutError as exc:
                if self._retry_policy is None:
                    raise
                attempt += 1
                if attempt >= self._retry_policy.max_attempts:
                    raise RetriesExhaustedError(
                        f"append to {self._topic}/{partition} failed "
                        f"{attempt} times: {exc}"
                    ) from exc
                if self._retry_budget is not None and not self._retry_budget.try_acquire():
                    raise RetriesExhaustedError(
                        f"append to {self._topic}/{partition}: deployment "
                        f"retry budget exhausted after {attempt} attempts: {exc}"
                    ) from exc
                self.append_retries += 1
                self._sleep(
                    self._retry_policy.delay_s(
                        attempt - 1, key=f"{self._topic}/{partition}"
                    )
                )

    def _route(self, key) -> int:
        if key is not None:
            return self._partitions[hash(key) % len(self._partitions)]
        partition = self._partitions[self._cursor % len(self._partitions)]
        self._cursor += 1
        return partition

    def send_row(self, row: tuple, key=None) -> int | None:
        """Produce one row; returns its record offset, or None when the row
        was buffered into a not-yet-flushed RowBlock.

        With ``key`` given, the partition is chosen by hash (per-key order);
        otherwise round-robin across this producer's partitions.
        """
        partition = self._route(key)
        if self._batch_rows <= 1:
            payload = encode_row(row)
            offset = self._append(partition, payload, rows=1)
            self.rows_sent += 1
            self.bytes_sent += len(payload)
            return offset
        batch = self._pending[partition]
        batch.append(row)
        self.rows_sent += 1
        if len(batch) >= self._batch_rows:
            return self._flush_partition(partition)
        return None

    def send_many(self, rows: Sequence[tuple]) -> None:
        """Produce a batch of rows (round-robin routed per row)."""
        for row in rows:
            self.send_row(row)

    def _flush_partition(self, partition: int) -> int | None:
        batch = self._pending[partition]
        if not batch:
            return None
        payload = encode_block(batch)
        offset = self._append(partition, payload, rows=len(batch))
        self.bytes_sent += block_logical_bytes(payload)
        batch.clear()
        return offset

    def flush(self) -> None:
        """Append any partially filled RowBlocks (EOF flush)."""
        for partition in self._partitions:
            self._flush_partition(partition)

    def close(self) -> None:
        """Flush pending blocks, then seal this producer's partitions
        (end-of-stream markers)."""
        self.flush()
        for partition in self._partitions:
            self._broker.seal_partition(self._topic, partition)
