"""A Kafka-like message broker — the paper's §8 future work, implemented.

§8: "we plan to investigate using a message passing system like Kafka to
pass the data between SQL and ML workers.  Kafka would guarantee at least
one read, in case of failures.  Kafka could also be the system to cache the
data when the ML workers are not fast enough to consume the data."

This package provides exactly that alternative transfer path:

* :class:`~repro.broker.broker.MessageBroker` — topics of append-only,
  offset-addressed partition logs with per-consumer-group committed offsets
  (the at-least-once primitive) and retention (the replay/caching
  primitive);
* :class:`~repro.broker.producer.BrokerProducer` /
  :class:`~repro.broker.consumer.BrokerConsumer` — the client API, with
  byte accounting under ``broker.*`` ledger categories;
* :class:`~repro.broker.transfer_udf.BrokerTransferUDF` — the SQL-side
  sender (a parallel table UDF, like ``stream_transfer``) producing into a
  topic with one partition per ML consumer;
* :class:`~repro.broker.inputformat.BrokerInputFormat` — the ML-side
  InputFormat, one split per topic partition, resuming from the consumer
  group's committed offset after a failure.

Compared to §3's direct streaming: the broker decouples the two systems in
time (the ML job may start late, re-read, or crash and resume) at the cost
of an extra persistence hop — the trade-off
``benchmarks/bench_ablation_broker.py`` quantifies.
"""

from repro.broker.broker import MessageBroker, TopicInfo
from repro.broker.consumer import BrokerConsumer
from repro.broker.inputformat import BrokerInputFormat, BrokerSplit
from repro.broker.producer import BrokerProducer
from repro.broker.transfer_udf import BrokerTransferUDF

__all__ = [
    "BrokerConsumer",
    "BrokerInputFormat",
    "BrokerProducer",
    "BrokerSplit",
    "BrokerTransferUDF",
    "MessageBroker",
    "TopicInfo",
]
