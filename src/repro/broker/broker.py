"""The broker core: topics, partition logs, offsets, consumer groups."""

import threading
from dataclasses import dataclass

from repro.cluster.cost import CostLedger
from repro.common.errors import ChannelTimeoutError, TransferError
from repro.sim.clock import WALL
from repro.transfer.buffers import block_logical_bytes


@dataclass(frozen=True)
class TopicInfo:
    """Public metadata of one topic."""

    name: str
    num_partitions: int
    sealed: bool
    total_records: int
    total_bytes: int


class _PartitionLog:
    """One append-only, offset-addressed log with its own lock.

    Records are opaque byte strings.  Offsets are dense integers from 0;
    a fetch at the current end returns empty (poll again) unless the
    partition is sealed, in which case the consumer knows it is done.
    """

    def __init__(self, clock=None):
        self.records: list[bytes] = []
        self.sealed = False
        self.lock = threading.Lock()
        self.readable = threading.Condition(self.lock)
        self.bytes = 0
        self.rows = 0  # logical rows carried; >= len(records) with RowBlocks
        self.clock = clock or WALL

    def append(self, payload: bytes, rows: int = 1) -> int:
        with self.lock:
            if self.sealed:
                raise TransferError("append to a sealed partition")
            self.records.append(payload)
            self.bytes += len(payload)
            self.rows += rows
            offset = len(self.records) - 1
            self.readable.notify_all()
            return offset

    def seal(self) -> None:
        with self.lock:
            self.sealed = True
            self.readable.notify_all()

    def fetch(
        self, offset: int, max_records: int, timeout: float | None
    ) -> tuple[list[bytes], int, bool]:
        """Returns (records, next_offset, end_of_partition).

        Blocks up to ``timeout`` when the log has no new records and is not
        sealed; a timeout raises (deadlock guard)."""
        if offset < 0:
            raise TransferError(f"negative offset {offset}")
        deadline = None if timeout is None else self.clock.now() + timeout
        with self.lock:
            while True:
                if offset < len(self.records):
                    chunk = self.records[offset : offset + max_records]
                    next_offset = offset + len(chunk)
                    at_end = self.sealed and next_offset >= len(self.records)
                    return chunk, next_offset, at_end
                if self.sealed:
                    return [], offset, True
                remaining = (
                    None if deadline is None else deadline - self.clock.now()
                )
                if remaining is not None and remaining <= 0:
                    raise ChannelTimeoutError(
                        f"broker fetch timed out at offset {offset} "
                        "(producer stalled?)"
                    )
                if not self.clock.wait_on(self.readable, remaining):
                    raise ChannelTimeoutError(
                        f"broker fetch timed out at offset {offset} "
                        "(producer stalled?)"
                    )


class MessageBroker:
    """Topics of partition logs plus consumer-group offset storage.

    Semantics mirror Kafka's essentials:

    * producers append to explicit partitions and receive offsets;
    * data is *retained* after consumption — any number of groups can read
      the same topic independently (the "broker as cache" §8 use);
    * consumer groups commit offsets; a consumer restarted after a crash
      resumes from the last commit, re-reading anything processed but not
      committed — **at-least-once** delivery.
    """

    def __init__(self, ledger: CostLedger | None = None, clock=None):
        self._topics: dict[str, list[_PartitionLog]] = {}
        self._group_offsets: dict[tuple[str, str, int], int] = {}
        self._ledger = ledger
        self._clock = clock or WALL
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- topics

    def create_topic(self, name: str, num_partitions: int) -> None:
        if num_partitions < 1:
            raise TransferError("a topic needs at least one partition")
        with self._lock:
            if name in self._topics:
                raise TransferError(f"topic {name!r} already exists")
            self._topics[name] = [
                _PartitionLog(clock=self._clock) for _ in range(num_partitions)
            ]

    def delete_topic(self, name: str) -> None:
        with self._lock:
            if self._topics.pop(name, None) is None:
                raise TransferError(f"unknown topic {name!r}")
            self._group_offsets = {
                key: value
                for key, value in self._group_offsets.items()
                if key[0] != name
            }

    def topic_info(self, name: str) -> TopicInfo:
        logs = self._logs(name)
        return TopicInfo(
            name=name,
            num_partitions=len(logs),
            sealed=all(log.sealed for log in logs),
            total_records=sum(log.rows for log in logs),
            total_bytes=sum(log.bytes for log in logs),
        )

    def topic_exists(self, name: str) -> bool:
        with self._lock:
            return name in self._topics

    def _logs(self, name: str) -> list[_PartitionLog]:
        with self._lock:
            logs = self._topics.get(name)
        if logs is None:
            raise TransferError(
                f"unknown topic {name!r}; known: {sorted(self._topics)}"
            )
        return logs

    def _log(self, name: str, partition: int) -> _PartitionLog:
        logs = self._logs(name)
        if not 0 <= partition < len(logs):
            raise TransferError(
                f"topic {name!r} has {len(logs)} partitions, not {partition + 1}"
            )
        return logs[partition]

    # ------------------------------------------------------------- data path

    def append(self, topic: str, partition: int, payload: bytes, rows: int = 1) -> int:
        """Produce one record (carrying ``rows`` logical rows); returns its
        offset.  Offsets address records — a RowBlock record occupies one
        offset no matter how many rows it carries — while ``topic_info``'s
        ``total_records`` counts the logical rows."""
        offset = self._log(topic, partition).append(payload, rows=rows)
        if self._ledger is not None:
            # Charged at the record's logical (per-row framing) size so the
            # simulated cost is invariant under RowBlock re-batching.
            self._ledger.add("broker.in", block_logical_bytes(payload))
        return offset

    def seal_partition(self, topic: str, partition: int) -> None:
        """Mark end-of-stream for one partition."""
        self._log(topic, partition).seal()

    def fetch(
        self,
        topic: str,
        partition: int,
        offset: int,
        max_records: int = 256,
        timeout: float | None = 30.0,
        retry: bool = False,
    ) -> tuple[list[bytes], int, bool]:
        """Consume from an explicit offset (see :class:`_PartitionLog`).

        ``retry`` marks §6 replay traffic — a refetch of a corrupted record
        or a redelivery after a consumer death.  Its bytes charge the
        separate ``broker.retry`` ledger counter, so fault-free ``broker.out``
        totals stay byte-for-byte invariant under injected faults.
        """
        chunk, next_offset, at_end = self._log(topic, partition).fetch(
            offset, max_records, timeout
        )
        if self._ledger is not None and chunk:
            category = "broker.retry" if retry else "broker.out"
            self._ledger.add(category, sum(block_logical_bytes(c) for c in chunk))
        return chunk, next_offset, at_end

    # --------------------------------------------------------------- offsets

    def committed_offset(self, group: str, topic: str, partition: int) -> int:
        """Last committed offset of a group (0 when never committed)."""
        with self._lock:
            return self._group_offsets.get((topic, group, partition), 0)

    def commit_offset(self, group: str, topic: str, partition: int, offset: int) -> None:
        """Record a group's progress; commits never move backwards."""
        with self._lock:
            key = (topic, group, partition)
            if offset < self._group_offsets.get(key, 0):
                raise TransferError(
                    f"offset commit moving backwards on {key}: "
                    f"{self._group_offsets[key]} -> {offset}"
                )
            self._group_offsets[key] = offset
