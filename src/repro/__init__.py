"""repro — a full reproduction of *"A Generic Solution to Integrate SQL and
Analytics for Big Data"* (Katsipoulakis et al., EDBT 2015).

The paper connects big SQL systems with big ML systems through three
techniques: In-SQL data transformation via parallel table UDFs (§2),
coordinator-brokered parallel streaming data transfer (§3, with a query
rewriter, §4), and caching of transformation results (§5).  This package
implements those techniques **and every substrate they run on** — a
partition-parallel SQL engine, a replicated distributed file system, a
MapReduce framework, Hadoop-style InputFormats, and an MLlib-like ML system
with from-scratch algorithms.

Quickstart::

   from repro import make_deployment
   from repro.workloads import generate_retail

   dep = make_deployment()
   wl = generate_retail(dep.engine, dep.dfs, num_users=500, num_carts=5_000)
   result = dep.pipeline.run_insql_stream(
       wl.prep_sql, wl.spec, command="svm_with_sgd", args={"iterations": 10}
   )
   print(result.breakdown())
   print(result.ml_result.model)

See DESIGN.md for the architecture map and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from dataclasses import dataclass

from repro.cluster.cluster import Cluster, make_paper_cluster
from repro.cluster.cost import CostModel, paper_cost_model
from repro.hdfs.filesystem import DistributedFileSystem
from repro.integration.pipeline import AnalyticsPipeline
from repro.integration.stages import PipelineResult
from repro.ml.system import MLSystem
from repro.sql.engine import BigSQL
from repro.transfer.coordinator import Coordinator
from repro.transform.spec import TransformSpec

__version__ = "1.0.0"

__all__ = [
    "AnalyticsPipeline",
    "BigSQL",
    "Cluster",
    "CostModel",
    "Deployment",
    "DistributedFileSystem",
    "MLSystem",
    "PipelineResult",
    "TransformSpec",
    "make_deployment",
    "make_paper_cluster",
    "paper_cost_model",
]


@dataclass
class Deployment:
    """One fully wired SQL+ML deployment on a simulated cluster."""

    cluster: Cluster
    dfs: DistributedFileSystem
    engine: BigSQL
    ml: MLSystem
    coordinator: Coordinator
    pipeline: AnalyticsPipeline
    #: the CoordinatorHAGroup when ``ha_standbys > 0`` (else None); its
    #: ``failovers`` / ``journal_dump()`` are the HA observability surface
    ha: object = None

    @property
    def broker(self):
        """The Kafka-like message broker (the §8 transfer alternative)."""
        return self.pipeline.broker


def make_deployment(
    num_workers: int = 4,
    block_size: int = 4 * 1024 * 1024,
    replication: int = 3,
    byte_scale: float = 1.0,
    cost_model: CostModel | None = None,
    buffer_bytes: int = 4096,
    batch_rows: int = 256,
    columnar: bool = False,
    workers_per_node: int = 6,
    transport: str = "memory",
    fault_injector=None,  # FaultInjector | None (§6 chaos testing)
    recovery=None,  # RecoveryManager | None (§6 recovery protocol)
    checkpoint_dir: str | None = None,  # DFS dir for training checkpoints
    checkpoint_interval: int = 0,  # iterations between saves; 0 = off
    ha_standbys: int = 0,  # standby coordinators; 0 = single coordinator
    zk=None,  # ZooKeeperLite | None — the HA coordination service
    max_concurrent_sessions: int = 1,  # >1 turns on multi-tenant serving
    tenant_quotas: dict | None = None,  # tenant -> max concurrent sessions
    tenant_spill_budgets: dict | None = None,  # tenant -> spill-byte budget
    admission_queue_depth: int = 64,  # bounded FIFO behind the quota gate
    tenant_priorities: dict | None = None,  # tenant -> shed priority (higher wins)
    default_deadline_s: float | None = None,  # end-to-end session budget; None = off
    retry_budget_tokens: int | None = None,  # deployment-wide retry allowance
    retry_budget_refill_per_s: float = 0.0,  # token refill rate (0 = fixed pool)
    clock=None,  # repro.sim.clock.Clock | None — deployment-wide time source
    dfs_capacity_bytes: int | None = None,  # per-DataNode disk capacity
    dfs_scanner: bool = False,  # start the periodic storage scanner
    dfs_heartbeat_ttl_s: float = 10.0,  # datanode liveness TTL
    dfs_scanner_interval_s: float = 1.0,  # seconds between scanner cycles
) -> Deployment:
    """Build the paper's testbed topology, fully wired.

    1 head + ``num_workers`` worker servers; a DFS with the given block size
    and replication; a BigSQL engine; an ML system with
    ``workers_per_node`` slots per server; a transfer coordinator with the
    paper's 4 KB buffers; and an :class:`AnalyticsPipeline` on top.

    ``transport`` selects the stream channel implementation: ``"memory"``
    (thread-safe spillable buffers, the default) or ``"socket"`` (real
    kernel socket pairs with non-blocking senders — §3's literal TCP step).

    ``batch_rows`` sets the RowBlock size of the transfer stack — how many
    rows travel per frame/lock acquisition on every stream channel and
    broker record.  ``batch_rows=1`` reproduces the seed's per-row wire
    format exactly.

    ``columnar=True`` switches the whole data plane to typed ColumnBatches:
    the SQL executor runs vectorized kernels over columnar partitions,
    stream sessions default to one ``C`` wire frame per channel, and ML
    ingestion builds (X, y) arrays directly from the received batches
    (an :class:`~repro.ml.dataset.ArrayDataset`).  Off by default — the
    row/RowBlock wire format and the Figure 3/4 byte ledgers stay
    bit-identical to the seed.  Row↔column adapters at every seam mean
    unsupported expressions or UDFs fall back per-partition, never fail.

    ``fault_injector`` / ``recovery`` install the §6 fault-tolerance stack:
    a seeded :class:`~repro.faults.injector.FaultInjector` (chaos source)
    and/or a :class:`~repro.faults.recovery.RecoveryManager` (heartbeats,
    send retries, coordinated partial restart).  Passing only an injector
    wraps it in a default RecoveryManager.

    ``checkpoint_interval > 0`` turns on §6 resumable training: a
    :class:`~repro.checkpoint.CheckpointStore` on the DFS (under
    ``checkpoint_dir``, default ``/checkpoints``) snapshots iterative-model
    state every that-many iterations.  Off by default — the fault-free byte
    ledgers of Figures 3/4 stay bit-identical unless opted in.

    ``ha_standbys > 0`` turns on coordinator high availability: a
    :class:`~repro.transfer.ha.CoordinatorHAGroup` runs one leader plus
    that many standbys behind a ZooKeeperLite lease (``zk`` supplies the
    coordination service, default a fresh one), every session mutation is
    journaled to ZK, and ``deployment.coordinator`` becomes the
    :class:`~repro.transfer.ha.FailoverCoordinator` proxy clients retry
    through after a takeover.  Off by default — no journal traffic, byte
    ledgers bit-identical to the single-coordinator deployment.

    ``max_concurrent_sessions > 1`` (or any ``tenant_quotas`` /
    ``tenant_spill_budgets``) turns on multi-tenant serving: a
    :class:`~repro.transfer.admission.SessionAdmission` gate with per-tenant
    quotas and a bounded FIFO queue in front of ``create_session``, a
    :class:`~repro.transfer.admission.WorkerPoolScheduler` leasing the
    shared ML worker slots fairly across live sessions, a
    :class:`~repro.transfer.admission.SpillGovernor` isolating one tenant's
    spill backpressure from everyone else's streams, and — on the socket
    transport — mux channels sharing one socket pair per SQL worker.  The
    default (1, None, None) is the seed single-session behavior: none of
    the objects exist, no new ledger categories are emitted, and the
    fault-free Figure 3/4 byte totals stay bit-identical.

    ``default_deadline_s`` arms every session with an end-to-end budget:
    one clock that every blocking wait (admission, worker slots, governor
    pauses, channel receives, broker fetches, the result wait) derives its
    timeout from, raising the typed, non-retryable
    :class:`~repro.common.errors.DeadlineExceeded` when spent — instead of
    the stacked per-layer defaults.  Per-session override:
    ``create_session(..., deadline_s=...)`` or the ``stream.deadline_s``
    conf prop.  ``tenant_priorities`` ranks tenants for admission-queue
    load shedding (lower-priority waiters are shed first when the queue is
    full); ``retry_budget_tokens`` installs a deployment-wide
    :class:`~repro.runtime.budget.RetryTokenBucket` that every retry site
    (HA failover proxy, broker producer appends, consumer refetches) draws
    from, so retries fail fast under overload instead of amplifying it.
    All three default to off — seed behavior, byte ledgers bit-identical.

    ``clock`` injects a :class:`~repro.sim.clock.Clock` into every timing
    site of the serving plane (budgets, retries, admission queues, channel
    timeouts, liveness sweeps).  ``None`` (the default) means
    :data:`~repro.sim.clock.WALL` — real time, byte-identical behavior.
    The chaos harness (:mod:`repro.sim.chaos`) passes a
    :class:`~repro.sim.clock.VirtualClock` so multi-second fault scenarios
    run deterministically in milliseconds (DESIGN §13).

    ``dfs_capacity_bytes`` / ``dfs_scanner`` / ``dfs_heartbeat_ttl_s`` /
    ``dfs_scanner_interval_s`` arm the self-healing storage plane (DESIGN
    §14): finite per-DataNode disks whose overflow raises the typed
    :class:`~repro.common.errors.StorageFullError` (redirected by the write
    pipeline, laddered by spill buffers and checkpoint commits), and a
    background :class:`~repro.hdfs.scanner.StorageScanner` that pumps
    clock-injected heartbeats, scrubs replica checksums, and re-replicates
    under-replicated blocks.  All off by default — virtual-clock runs
    should leave ``dfs_scanner=False`` and call
    ``deployment.dfs.run_repair_cycle()`` at quiescence instead (a
    free-running loop would spin virtual time once the workload ends).
    """
    from repro.sim.clock import WALL

    clock = clock or WALL
    cluster = make_paper_cluster(num_workers)
    # The DFS needs the injector at construction (DataNodes bind their
    # fault sites once); accept it from either the explicit argument or a
    # caller-built RecoveryManager.
    storage_injector = fault_injector or (
        getattr(recovery, "injector", None) if recovery is not None else None
    )
    dfs = DistributedFileSystem(
        cluster,
        block_size=block_size,
        replication=replication,
        fault_injector=storage_injector,
        clock=clock,
        capacity_bytes=dfs_capacity_bytes,
        heartbeat_ttl_s=dfs_heartbeat_ttl_s,
        scanner_interval_s=dfs_scanner_interval_s,
    )
    if dfs_scanner:
        dfs.start_scanner()
    engine = BigSQL(cluster, dfs, columnar=columnar)
    if clock is not WALL:
        # Table-UDF workers and executor tasks look the clock up through
        # ExecutionContext.services to register as simulation-managed.
        engine.add_service("clock", clock)
    ml = MLSystem(cluster, workers_per_node=workers_per_node)
    admission = worker_pool = spill_governor = None
    multitenant = (
        max_concurrent_sessions > 1
        or tenant_quotas
        or tenant_spill_budgets
        or tenant_priorities
    )
    retry_budget = None
    if retry_budget_tokens is not None:
        from repro.runtime.budget import RetryTokenBucket

        retry_budget = RetryTokenBucket(
            capacity=retry_budget_tokens,
            refill_per_s=retry_budget_refill_per_s,
            ledger=cluster.ledger,
            clock=clock,
        )
    if multitenant:
        from repro.transfer.admission import (
            SessionAdmission,
            SpillGovernor,
            WorkerPoolScheduler,
        )

        admission = SessionAdmission(
            max_concurrent_sessions=max_concurrent_sessions,
            tenant_quotas=tenant_quotas,
            max_queue_depth=admission_queue_depth,
            ledger=cluster.ledger,
            tenant_priorities=tenant_priorities,
            clock=clock,
        )
        worker_pool = WorkerPoolScheduler(
            total_slots=num_workers * workers_per_node,
            ledger=cluster.ledger,
            clock=clock,
        )
        if tenant_spill_budgets:
            spill_governor = SpillGovernor(
                tenant_budgets=tenant_spill_budgets,
                ledger=cluster.ledger,
                clock=clock,
            )
    ha_group = None
    if ha_standbys > 0:
        from repro.transfer.ha import CoordinatorHAGroup

        ha_group = CoordinatorHAGroup(
            cluster,
            zk=zk,
            standbys=ha_standbys,
            buffer_bytes=buffer_bytes,
            batch_rows=batch_rows,
            columnar=columnar,
            transport=transport,
            recovery=recovery,
            fault_injector=fault_injector,
            admission=admission,
            worker_pool=worker_pool,
            spill_governor=spill_governor,
            retry_budget=retry_budget,
            default_deadline_s=default_deadline_s,
            clock=clock,
        )
        coordinator = ha_group.proxy
    else:
        coordinator = Coordinator(
            cluster,
            buffer_bytes=buffer_bytes,
            batch_rows=batch_rows,
            columnar=columnar,
            transport=transport,
            recovery=recovery,
            fault_injector=fault_injector,
            admission=admission,
            worker_pool=worker_pool,
            spill_governor=spill_governor,
            retry_budget=retry_budget,
            default_deadline_s=default_deadline_s,
            clock=clock,
        )
    effective_injector = fault_injector or (
        coordinator.recovery.injector if coordinator.recovery is not None else None
    )
    ml.fault_injector = effective_injector
    if checkpoint_interval > 0:
        from repro.checkpoint import CheckpointStore

        ml.checkpoint_store = CheckpointStore(
            dfs,
            base_dir=checkpoint_dir or "/checkpoints",
            ledger=cluster.ledger,
            injector=effective_injector,
        )
        ml.checkpoint_interval = checkpoint_interval
    pipeline = AnalyticsPipeline(
        cluster=cluster,
        dfs=dfs,
        engine=engine,
        ml_system=ml,
        coordinator=coordinator,
        cost_model=cost_model,
        byte_scale=byte_scale,
    )
    return Deployment(
        cluster=cluster,
        dfs=dfs,
        engine=engine,
        ml=ml,
        coordinator=coordinator,
        pipeline=pipeline,
        ha=ha_group,
    )
