"""Device-rate cost model and byte accounting.

Why this exists
---------------
The paper's experiments ran on 5 servers with 10 GbE and 12 disks each, over a
1-billion-row table.  Re-running that on one laptop cannot reproduce absolute
seconds, and the *relative* results (In-SQL 1.7x over naive, streaming saving
the ~46 s DFS ingest, caching 1.5x / 2.2x) are entirely determined by how many
bytes each stage pushes through which device and whether stages pipeline or
materialize.  So:

* every subsystem (DFS, SQL engine, MapReduce, streaming transfer, ML ingest)
  records the bytes it actually moves into a :class:`CostLedger`;
* the benchmark harness scales those observed counts up to paper-scale row
  counts and converts them to seconds with the calibrated rates in
  :class:`CostModel`;
* stage composition follows the real structure: operators inside one pipeline
  overlap (time = max of component times, the bottleneck), while a
  materialization boundary serializes (time = sum).

Calibration
-----------
Rates are calibrated from the two absolute numbers the paper gives us —
reading the 5.6 GB transformed dataset from HDFS into Spark takes 46 s
(122 MB/s aggregate ingest), and SVMWithSGD x10 iterations plus that read is
774 s — plus era-appropriate hardware rates for the rest.  The shape
assertions in ``benchmarks/`` check the reproduced ratios against the paper's.
"""

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Aggregate cluster-level effective rates, in bytes/second.

    "Aggregate" means summed across the 4 worker nodes: e.g. the SQL engine
    scans text at ``sql_scan_bps`` across all its workers combined.
    """

    #: Big SQL text scan + parse + join + filter, aggregate over workers.
    sql_scan_bps: float = 880e6
    #: Serializing/producing transformed output rows (recode join + dummy).
    sql_output_bps: float = 600e6
    #: Speed multiplier for the recoding pass-1 scan: it projects only the
    #: categorical columns, keeps a tiny distinct set, and serializes nothing.
    distinct_pass_speedup: float = 1.5
    #: Client-effective DFS write rate including 3-way replication pipeline.
    dfs_write_bps: float = 400e6
    #: DFS sequential read rate (aggregate).
    dfs_read_bps: float = 1200e6
    #: MapReduce (Jaql) per-pass processing rate over text records.  Era
    #: MapReduce paid heavy per-record and spill overheads on top of I/O.
    mr_process_bps: float = 95e6
    #: Fixed startup overhead of launching one MapReduce job.
    mr_job_startup_s: float = 15.0
    #: Spark-style ML job: text-from-DFS parse rate into the in-memory RDD.
    #: Calibrated to the paper: 5.6 GB read in 46 s (incl. 4 s job startup).
    ml_hdfs_ingest_bps: float = 133e6
    #: ML ingest rate when rows arrive pre-parsed over stream channels
    #: (no DFS read, no text parsing — but still deserialization + RDD build).
    ml_stream_ingest_bps: float = 230e6
    #: Fixed startup overhead of launching one ML job.
    ml_job_startup_s: float = 4.0
    #: Network streaming rate between SQL and ML workers (10 GbE, 4 links).
    stream_net_bps: float = 4000e6
    #: Per-record CPU rate of one SGD pass over the in-memory RDD, in bytes
    #: of in-memory labeled points ((dim+1) doubles per record).  Calibrated
    #: to the paper's 774 s = 46 s read + 10 SGD iterations over 5.6 GB.
    ml_sgd_bps: float = 208e6
    #: Shuffle/exchange rate inside the SQL engine.
    sql_shuffle_bps: float = 1000e6
    #: Broker (Kafka-like) produce/consume rate — sequential log I/O.
    broker_bps: float = 300e6
    #: Fixed overhead of the broker hop (topic setup, group coordination).
    broker_overhead_s: float = 6.0

    # ------------------------------------------------------------------
    # Per-operation timings (seconds for the given paper-scale byte count)
    # ------------------------------------------------------------------

    def sql_scan_time(self, in_bytes: float) -> float:
        """Scan+parse+join+filter a text input of ``in_bytes``."""
        return in_bytes / self.sql_scan_bps

    def sql_output_time(self, out_bytes: float) -> float:
        """Produce/serialize ``out_bytes`` of transformed output."""
        return out_bytes / self.sql_output_bps

    def distinct_pass_time(self, in_bytes: float) -> float:
        """Pass 1 of two-phase recoding over ``in_bytes`` of input."""
        return in_bytes / (self.sql_scan_bps * self.distinct_pass_speedup)

    def dfs_write_time(self, nbytes: float) -> float:
        """Write ``nbytes`` to the DFS with replication."""
        return nbytes / self.dfs_write_bps

    def dfs_read_time(self, nbytes: float) -> float:
        """Sequentially read ``nbytes`` from the DFS."""
        return nbytes / self.dfs_read_bps

    def mr_pass_time(self, in_bytes: float, out_bytes: float) -> float:
        """One MapReduce pass: startup + processing + replicated output write."""
        return (
            self.mr_job_startup_s
            + in_bytes / self.mr_process_bps
            + out_bytes / self.dfs_write_bps
        )

    def ml_hdfs_ingest_time(self, nbytes: float) -> float:
        """ML job reads+parses ``nbytes`` of text from the DFS into the RDD."""
        return self.ml_job_startup_s + nbytes / self.ml_hdfs_ingest_bps

    def ml_stream_ingest_time(self, nbytes: float) -> float:
        """ML job ingests ``nbytes`` of pre-parsed rows from stream channels."""
        return self.ml_job_startup_s + max(
            nbytes / self.ml_stream_ingest_bps, nbytes / self.stream_net_bps
        )

    def sgd_iteration_time(self, nbytes: float) -> float:
        """One SGD iteration over an in-memory RDD of ``nbytes``."""
        return nbytes / self.ml_sgd_bps

    def broker_hop_time(self, nbytes: float) -> float:
        """Produce+persist ``nbytes`` through the broker (one direction)."""
        return self.broker_overhead_s + nbytes / self.broker_bps


def paper_cost_model() -> CostModel:
    """The calibration used for all paper-shape benchmarks."""
    return CostModel()


@dataclass(frozen=True)
class StageCost:
    """Simulated cost of one pipeline stage at paper scale."""

    name: str
    seconds: float
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.name}: {self.seconds:.1f}s"


def sequential(name: str, stages: list[StageCost]) -> StageCost:
    """Compose stages separated by materialization boundaries (sum)."""
    return StageCost(
        name=name,
        seconds=sum(s.seconds for s in stages),
        bytes_in=stages[0].bytes_in if stages else 0.0,
        bytes_out=stages[-1].bytes_out if stages else 0.0,
        detail=" + ".join(s.name for s in stages),
    )


def pipelined(name: str, stages: list[StageCost]) -> StageCost:
    """Compose stages that overlap in one pipeline (bottleneck = max)."""
    if not stages:
        return StageCost(name=name, seconds=0.0)
    bottleneck = max(stages, key=lambda s: s.seconds)
    return StageCost(
        name=name,
        seconds=bottleneck.seconds,
        bytes_in=stages[0].bytes_in,
        bytes_out=stages[-1].bytes_out,
        detail=f"bottleneck={bottleneck.name}",
    )


class CostLedger:
    """Thread-safe byte counters, one per traffic category.

    Categories are free-form strings; the conventional ones are listed in
    :data:`CATEGORIES`.  Subsystems call :meth:`add` as bytes move; harnesses
    take :meth:`snapshot` before/after a stage and diff with :meth:`delta`.
    """

    CATEGORIES = (
        "dfs.read",
        "dfs.write.local",
        "dfs.write.replica_net",
        "sql.scan",
        "sql.shuffle",
        "sql.output",
        "mr.read",
        "mr.shuffle",
        "mr.write",
        "stream.sent",
        "stream.spilled",
        "stream.retry",
        "broker.in",
        "broker.out",
        "broker.retry",
        "ml.ingest",
        "checkpoint.write",
        "checkpoint.read",
        "ml.replay",
        # Coordinator HA (off by default): journal bytes written to
        # ZooKeeperLite, and leader takeovers as a *count* (not bytes).
        "zk.journal",
        "coordinator.failover",
        # Row *counts* (not bytes) of dirty-data handling in the recode UDF.
        "transform.unseen_nulled",
        "transform.rows_skipped",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}

    def add(self, category: str, nbytes: int) -> None:
        """Record ``nbytes`` of traffic in ``category``."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        with self._lock:
            self._counters[category] = self._counters.get(category, 0) + nbytes

    def get(self, category: str) -> int:
        """Current total for ``category`` (0 if never seen)."""
        with self._lock:
            return self._counters.get(category, 0)

    def snapshot(self) -> dict[str, int]:
        """Copy of all counters at this instant."""
        with self._lock:
            return dict(self._counters)

    @staticmethod
    def delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
        """Per-category difference between two snapshots."""
        keys = set(before) | set(after)
        return {k: after.get(k, 0) - before.get(k, 0) for k in keys}

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self._counters.clear()
