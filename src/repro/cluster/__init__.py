"""Simulated cluster substrate.

The paper's testbed is 5 physical servers (1 head + 4 workers), each with
12 physical cores, 12 SATA disks, 96 GB RAM and a 10 Gbit NIC.  We model that
topology with :class:`~repro.cluster.node.Node` objects grouped into a
:class:`~repro.cluster.cluster.Cluster`, and account every byte that moves
through a disk or the network in a :class:`~repro.cluster.cost.CostLedger`.

Execution in this library is *really* parallel (worker threads, bounded
queues), but wall-clock on a laptop says nothing about a 10 GbE cluster, so
timings reported by benchmarks come from the cost model: observed byte counts
scaled to paper-scale row counts, divided by calibrated device rates, and
composed with the pipeline structure of each stage.
"""

from repro.cluster.cluster import Cluster, make_paper_cluster
from repro.cluster.cost import CostLedger, CostModel, StageCost
from repro.cluster.node import Disk, Node

__all__ = [
    "Cluster",
    "CostLedger",
    "CostModel",
    "Disk",
    "Node",
    "StageCost",
    "make_paper_cluster",
]
