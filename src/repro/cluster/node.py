"""Cluster node and disk models."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Disk:
    """A locally attached disk with sequential read/write bandwidth.

    The defaults approximate a 7.2k SATA spindle of the paper's era.
    """

    read_bps: float = 120e6
    write_bps: float = 110e6


@dataclass(frozen=True)
class Node:
    """One physical server.

    ``ip`` doubles as the locality token: InputSplit locations, coordinator
    matchmaking, and DFS block placement all compare node IPs, exactly the way
    the paper's coordinator matches SQL-worker IPs with ML-worker IPs.
    """

    node_id: int
    hostname: str
    ip: str
    cores: int = 12
    ram_bytes: int = 96 * 10**9
    disks: tuple[Disk, ...] = field(default_factory=lambda: tuple(Disk() for _ in range(12)))

    @property
    def disk_read_bps(self) -> float:
        """Aggregate sequential read bandwidth across all local disks."""
        return sum(d.read_bps for d in self.disks)

    @property
    def disk_write_bps(self) -> float:
        """Aggregate sequential write bandwidth across all local disks."""
        return sum(d.write_bps for d in self.disks)

    def __str__(self) -> str:  # pragma: no cover - debug convenience
        return f"{self.hostname}({self.ip})"
