"""Cluster topology: a head node plus worker nodes, with a shared ledger."""

from repro.cluster.cost import CostLedger
from repro.cluster.node import Disk, Node


class Cluster:
    """A set of nodes sharing one network and one :class:`CostLedger`.

    The first node is conventionally the head node (NameNode, coordinator,
    job master); the rest host DFS DataNodes, SQL workers and ML workers —
    mirroring the paper's testbed layout.
    """

    def __init__(self, nodes: list[Node], network_bps: float = 10e9 / 8):
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids")
        ips = [n.ip for n in nodes]
        if len(set(ips)) != len(ips):
            raise ValueError("duplicate node ips")
        self.nodes = list(nodes)
        self.network_bps = network_bps
        self.ledger = CostLedger()
        self._by_ip = {n.ip: n for n in nodes}
        self._by_id = {n.node_id: n for n in nodes}

    @property
    def head(self) -> Node:
        """The head node (first in the list)."""
        return self.nodes[0]

    @property
    def workers(self) -> list[Node]:
        """All nodes except the head."""
        return self.nodes[1:] if len(self.nodes) > 1 else self.nodes

    def node_by_ip(self, ip: str) -> Node:
        """Look a node up by its IP (KeyError if unknown)."""
        return self._by_ip[ip]

    def node_by_id(self, node_id: int) -> Node:
        """Look a node up by its id (KeyError if unknown)."""
        return self._by_id[node_id]

    def is_local(self, ip_a: str, ip_b: str) -> bool:
        """True when both IPs name the same node (no network hop needed)."""
        return ip_a == ip_b

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Cluster({len(self.nodes)} nodes, head={self.head.hostname})"


def make_paper_cluster(num_workers: int = 4) -> Cluster:
    """Build the paper's testbed: 1 head + ``num_workers`` worker servers.

    Each server: 12 cores, 12 SATA disks, 96 GB RAM, 10 GbE.
    """
    nodes = [
        Node(
            node_id=i,
            hostname=("head" if i == 0 else f"worker{i}"),
            ip=f"10.0.0.{i + 1}",
            cores=12,
            ram_bytes=96 * 10**9,
            disks=tuple(Disk() for _ in range(12)),
        )
        for i in range(num_workers + 1)
    ]
    return Cluster(nodes, network_bps=10e9 / 8)
