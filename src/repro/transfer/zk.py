"""ZooKeeperLite: the coordination substrate §6 calls for.

"First, we need the coordinator service to be resilient itself.  This can
be achieved by using Zookeeper."  This module provides the ZooKeeper
essentials in-process:

* a hierarchical namespace of *znodes*, each carrying bytes and a version
  (compare-and-set updates);
* *ephemeral* znodes bound to a client session — they vanish when the
  session closes or expires (how real coordinators detect dead workers);
* one-shot *watches* on node creation/change/deletion, delivered
  synchronously on the mutating call (deterministic for tests).

:class:`CoordinatorStateStore` builds on it to mirror every transfer
session's metadata (registration progress, command, configuration), so a
replacement coordinator can list and inspect in-flight sessions after the
original dies — the §6 resilience story at the metadata level.
"""

import json
import threading
from collections.abc import Callable
from dataclasses import dataclass

from repro.common.errors import TransferError


class ZkError(TransferError):
    """ZooKeeperLite namespace violation (missing node, bad version, ...)."""


@dataclass
class _Znode:
    data: bytes
    version: int = 0
    ephemeral_owner: str | None = None


def _validate(path: str) -> str:
    if not path.startswith("/") or path != "/" and path.endswith("/"):
        raise ZkError(f"bad znode path {path!r}")
    return path


def _parent(path: str) -> str:
    return path.rsplit("/", 1)[0] or "/"


class ZooKeeperLite:
    """The coordination service: znodes + sessions + watches."""

    def __init__(self):
        self._nodes: dict[str, _Znode] = {"/": _Znode(b"")}
        self._sessions: set[str] = set()
        self._watches: dict[str, list[Callable[[str, str], None]]] = {}
        self._lock = threading.RLock()

    # --------------------------------------------------------------- session

    def start_session(self, client_id: str) -> None:
        """Register a client session (owner of future ephemerals)."""
        with self._lock:
            if client_id in self._sessions:
                raise ZkError(f"session {client_id!r} already active")
            self._sessions.add(client_id)

    def close_session(self, client_id: str) -> list[str]:
        """End a session; its ephemeral nodes are deleted (watches fire).
        Returns the removed paths."""
        with self._lock:
            self._sessions.discard(client_id)
            doomed = [
                path
                for path, node in self._nodes.items()
                if node.ephemeral_owner == client_id
            ]
            for path in sorted(doomed, key=len, reverse=True):
                self._delete_locked(path)
            return sorted(doomed)

    def expire_session(self, client_id: str) -> list[str]:
        """Server-side session expiry: the client missed its heartbeats.

        Semantically identical to :meth:`close_session` — ephemerals vanish
        and their watches fire — but it is the *coordination service's*
        verdict, not the client's choice, which is exactly how §6's failure
        detector learns that a worker died mid-transfer.  Raises if the
        session was never started (expiring nothing is a bug in the caller).
        """
        with self._lock:
            if client_id not in self._sessions:
                raise ZkError(f"no session {client_id!r} to expire")
            return self.close_session(client_id)

    # ----------------------------------------------------------------- CRUD

    def create(
        self,
        path: str,
        data: bytes = b"",
        ephemeral_owner: str | None = None,
    ) -> None:
        """Create a znode (parents must exist; fails if present)."""
        path = _validate(path)
        with self._lock:
            if path in self._nodes:
                raise ZkError(f"znode {path!r} already exists")
            if _parent(path) not in self._nodes:
                raise ZkError(f"parent of {path!r} does not exist")
            if ephemeral_owner is not None:
                if ephemeral_owner not in self._sessions:
                    raise ZkError(f"no session {ephemeral_owner!r}")
            self._nodes[path] = _Znode(data, ephemeral_owner=ephemeral_owner)
            self._fire(path, "created")

    def ensure_path(self, path: str) -> None:
        """Create a persistent node and all missing ancestors (idempotent)."""
        path = _validate(path)
        with self._lock:
            parts = [p for p in path.split("/") if p]
            current = ""
            for part in parts:
                current += "/" + part
                if current not in self._nodes:
                    self._nodes[current] = _Znode(b"")
                    self._fire(current, "created")

    def get(self, path: str) -> tuple[bytes, int]:
        """(data, version) of a znode."""
        path = _validate(path)
        with self._lock:
            node = self._nodes.get(path)
            if node is None:
                raise ZkError(f"no znode {path!r}")
            return node.data, node.version

    def set(self, path: str, data: bytes, expected_version: int | None = None) -> int:
        """Update data; with ``expected_version`` it is a compare-and-set.
        Returns the new version."""
        path = _validate(path)
        with self._lock:
            node = self._nodes.get(path)
            if node is None:
                raise ZkError(f"no znode {path!r}")
            if expected_version is not None and node.version != expected_version:
                raise ZkError(
                    f"version conflict on {path!r}: "
                    f"expected {expected_version}, is {node.version}"
                )
            node.data = data
            node.version += 1
            self._fire(path, "changed")
            return node.version

    def delete(self, path: str) -> None:
        """Delete a leaf znode."""
        path = _validate(path)
        with self._lock:
            if path not in self._nodes:
                raise ZkError(f"no znode {path!r}")
            if any(_parent(p) == path for p in self._nodes if p != path):
                raise ZkError(f"znode {path!r} has children")
            self._delete_locked(path)

    def exists(self, path: str) -> bool:
        with self._lock:
            return _validate(path) in self._nodes

    def children(self, path: str) -> list[str]:
        """Immediate child names (not full paths), sorted."""
        path = _validate(path)
        with self._lock:
            if path not in self._nodes:
                raise ZkError(f"no znode {path!r}")
            prefix = path if path != "/" else ""
            names = []
            for candidate in self._nodes:
                if candidate != path and _parent(candidate) == path:
                    names.append(candidate[len(prefix) + 1 :])
            return sorted(names)

    # --------------------------------------------------------------- watches

    def watch(self, path: str, callback: Callable[[str, str], None]) -> None:
        """One-shot watch: ``callback(path, event)`` fires on the next
        created/changed/deleted event for ``path``, then disarms."""
        path = _validate(path)
        with self._lock:
            self._watches.setdefault(path, []).append(callback)

    # ------------------------------------------------------------- internals

    def _delete_locked(self, path: str) -> None:
        del self._nodes[path]
        self._fire(path, "deleted")

    def _fire(self, path: str, event: str) -> None:
        callbacks = self._watches.pop(path, [])
        for callback in callbacks:
            callback(path, event)


class CoordinatorStateStore:
    """Replicated journal of transfer-session control state (§6 resilience).

    The coordinator versioned-writes every session mutation — create,
    SQL-worker registration, split plan, ML-worker claims, recovery-log
    entries, result status — as znodes under ``/coordinator/sessions/<id>``,
    and :meth:`session_view` reads it all back, so a standby coordinator can
    reconstruct :class:`~repro.transfer.coordinator.StreamSession` *control*
    state on takeover (channel buffers are data-plane state living on the
    worker hosts and are re-attached, not replayed — see DESIGN.md §9).

    Writes are fenced by leader epoch: a store bound to an epoch (via
    :meth:`for_epoch`) refuses to write once a newer leader has CAS-bumped
    the epoch znode, so a deposed leader that is still running cannot corrupt
    the journal mid-takeover.  Journal traffic is metered into the
    ``zk.journal`` ledger counter when a ledger is attached (off by default —
    the non-HA byte totals stay bit-identical).
    """

    ROOT = "/coordinator/sessions"
    EPOCH_PATH = "/coordinators/epoch"
    ADMISSION_PATH = "/coordinator/admission"

    def __init__(self, zk: ZooKeeperLite, ledger=None, fencing_epoch: int | None = None):
        self.zk = zk
        self.ledger = ledger
        #: leader term this store writes on behalf of; None = unfenced
        #: (the single-coordinator deployments of PR 2/3)
        self.fencing_epoch = fencing_epoch
        zk.ensure_path(self.ROOT)

    def for_epoch(self, epoch: int) -> "CoordinatorStateStore":
        """A fenced view of the same journal, bound to one leader term."""
        return CoordinatorStateStore(self.zk, ledger=self.ledger, fencing_epoch=epoch)

    # ------------------------------------------------------------- writing

    def _check_fence(self) -> None:
        if self.fencing_epoch is None or not self.zk.exists(self.EPOCH_PATH):
            return
        data, _v = self.zk.get(self.EPOCH_PATH)
        current = int(data or b"0")
        if current != self.fencing_epoch:
            raise ZkError(
                f"fenced: journal write from stale leader epoch "
                f"{self.fencing_epoch} (current epoch is {current})"
            )

    def _write(self, path: str, payload: bytes) -> None:
        """Fenced, versioned journal write (create, or CAS on the version
        just read — a concurrent stale-leader write loses the race loudly)."""
        self._check_fence()
        if self.zk.exists(path):
            _data, version = self.zk.get(path)
            self.zk.set(path, payload, expected_version=version)
        else:
            self.zk.create(path, payload)
        if self.ledger is not None:
            self.ledger.add("zk.journal", len(payload))

    def record_session(
        self,
        session_id: str,
        command: str | None,
        conf: dict,
        args: dict | None = None,
        settings: dict | None = None,
    ) -> None:
        base = f"{self.ROOT}/{session_id}"
        self.zk.ensure_path(base)
        self.zk.ensure_path(f"{base}/workers")
        self.zk.ensure_path(f"{base}/ml")
        self.zk.ensure_path(f"{base}/recovery")
        payload = json.dumps(
            {
                "command": command,
                "conf": conf,
                "args": args or {},
                "settings": settings or {},
            }
        ).encode()
        self._write(f"{base}/meta", payload)

    def record_worker(
        self, session_id: str, worker_id: int, ip: str, total_workers: int
    ) -> None:
        base = f"{self.ROOT}/{session_id}/workers"
        payload = json.dumps({"ip": ip, "total": total_workers}).encode()
        self._write(f"{base}/{worker_id}", payload)

    def record_splits(self, session_id: str, groups: dict) -> None:
        """Journal the split plan: SQL worker id -> its channel ids."""
        payload = json.dumps(
            {
                str(worker_id): [[cid.sql_worker_id, cid.index] for cid in group]
                for worker_id, group in groups.items()
            }
        ).encode()
        self._write(f"{self.ROOT}/{session_id}/splits", payload)

    def record_ml_claim(self, session_id: str, channel_id) -> None:
        """Journal one ML reader's split claim."""
        base = f"{self.ROOT}/{session_id}/ml"
        payload = json.dumps([channel_id.sql_worker_id, channel_id.index]).encode()
        self._write(f"{base}/{channel_id.index}", payload)

    def record_recovery(self, session_id: str, entry: dict) -> None:
        """Append one recovery-log entry (sequential child znodes)."""
        base = f"{self.ROOT}/{session_id}/recovery"
        if not self.zk.exists(base):
            self.zk.ensure_path(base)
        seq = len(self.zk.children(base))
        self._write(f"{base}/{seq:06d}", json.dumps(entry).encode())

    def record_status(self, session_id: str, status: str) -> None:
        self._write(f"{self.ROOT}/{session_id}/status", status.encode())

    def record_admission(self, state: dict) -> None:
        """Journal one admission transition (multi-tenant deployments; one
        znode, overwritten on every admit/release).

        The payload is the *transition* — event, session, tenant — not a
        snapshot of the whole running set: a snapshot's size depends on how
        many sessions happen to overlap, which is thread-interleaving noise,
        and the ``zk.journal`` byte total must stay a pure function of the
        workload so chaos fingerprints replay bit-identically.  A takeover
        audits tenant occupancy from the per-session journal entries (which
        carry tenant and status) rather than from this znode."""
        self._write(self.ADMISSION_PATH, json.dumps(state, sort_keys=True).encode())

    def admission_view(self) -> dict:
        """The last journaled admission transition ({} when never written)."""
        if not self.zk.exists(self.ADMISSION_PATH):
            return {}
        data, _v = self.zk.get(self.ADMISSION_PATH)
        return json.loads(data.decode())

    # ------------------------------------------------------------- reading

    def sessions(self) -> list[str]:
        return self.zk.children(self.ROOT)

    def session_view(self, session_id: str) -> dict:
        """Everything a replacement coordinator needs to know."""
        from repro.transfer.channel import ChannelId

        base = f"{self.ROOT}/{session_id}"
        meta, _v = self.zk.get(f"{base}/meta")
        view = json.loads(meta.decode())
        workers = {}
        for name in self.zk.children(f"{base}/workers"):
            data, _v = self.zk.get(f"{base}/workers/{name}")
            workers[int(name)] = json.loads(data.decode())
        view["workers"] = workers
        if self.zk.exists(f"{base}/splits"):
            raw, _v = self.zk.get(f"{base}/splits")
            view["groups"] = {
                int(worker_id): [ChannelId(w, i) for w, i in group]
                for worker_id, group in json.loads(raw.decode()).items()
            }
        else:
            view["groups"] = None
        claims = []
        if self.zk.exists(f"{base}/ml"):
            for name in self.zk.children(f"{base}/ml"):
                data, _v = self.zk.get(f"{base}/ml/{name}")
                w, i = json.loads(data.decode())
                claims.append(ChannelId(w, i))
        view["ml_claims"] = claims
        log = []
        if self.zk.exists(f"{base}/recovery"):
            for name in self.zk.children(f"{base}/recovery"):
                data, _v = self.zk.get(f"{base}/recovery/{name}")
                log.append(json.loads(data.decode()))
        view["recovery_log"] = log
        if self.zk.exists(f"{base}/status"):
            status, _v = self.zk.get(f"{base}/status")
            view["status"] = status.decode()
        else:
            view["status"] = "registering"
        return view

    def journal_dump(self) -> dict:
        """Every znode under the journal root, decoded — the CI artifact a
        failed chaos run uploads so takeover state can be inspected."""
        dump = {}
        with self.zk._lock:
            paths = sorted(p for p in self.zk._nodes if p.startswith("/coordinator"))
        for path in paths:
            try:
                data, version = self.zk.get(path)
            except ZkError:
                continue
            dump[path] = {
                "version": version,
                "data": data.decode("utf-8", errors="replace"),
            }
        return dump
