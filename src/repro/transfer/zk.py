"""ZooKeeperLite: the coordination substrate §6 calls for.

"First, we need the coordinator service to be resilient itself.  This can
be achieved by using Zookeeper."  This module provides the ZooKeeper
essentials in-process:

* a hierarchical namespace of *znodes*, each carrying bytes and a version
  (compare-and-set updates);
* *ephemeral* znodes bound to a client session — they vanish when the
  session closes or expires (how real coordinators detect dead workers);
* one-shot *watches* on node creation/change/deletion, delivered
  synchronously on the mutating call (deterministic for tests).

:class:`CoordinatorStateStore` builds on it to mirror every transfer
session's metadata (registration progress, command, configuration), so a
replacement coordinator can list and inspect in-flight sessions after the
original dies — the §6 resilience story at the metadata level.
"""

import json
import threading
from collections.abc import Callable
from dataclasses import dataclass

from repro.common.errors import TransferError


class ZkError(TransferError):
    """ZooKeeperLite namespace violation (missing node, bad version, ...)."""


@dataclass
class _Znode:
    data: bytes
    version: int = 0
    ephemeral_owner: str | None = None


def _validate(path: str) -> str:
    if not path.startswith("/") or path != "/" and path.endswith("/"):
        raise ZkError(f"bad znode path {path!r}")
    return path


def _parent(path: str) -> str:
    return path.rsplit("/", 1)[0] or "/"


class ZooKeeperLite:
    """The coordination service: znodes + sessions + watches."""

    def __init__(self):
        self._nodes: dict[str, _Znode] = {"/": _Znode(b"")}
        self._sessions: set[str] = set()
        self._watches: dict[str, list[Callable[[str, str], None]]] = {}
        self._lock = threading.RLock()

    # --------------------------------------------------------------- session

    def start_session(self, client_id: str) -> None:
        """Register a client session (owner of future ephemerals)."""
        with self._lock:
            if client_id in self._sessions:
                raise ZkError(f"session {client_id!r} already active")
            self._sessions.add(client_id)

    def close_session(self, client_id: str) -> list[str]:
        """End a session; its ephemeral nodes are deleted (watches fire).
        Returns the removed paths."""
        with self._lock:
            self._sessions.discard(client_id)
            doomed = [
                path
                for path, node in self._nodes.items()
                if node.ephemeral_owner == client_id
            ]
            for path in sorted(doomed, key=len, reverse=True):
                self._delete_locked(path)
            return sorted(doomed)

    def expire_session(self, client_id: str) -> list[str]:
        """Server-side session expiry: the client missed its heartbeats.

        Semantically identical to :meth:`close_session` — ephemerals vanish
        and their watches fire — but it is the *coordination service's*
        verdict, not the client's choice, which is exactly how §6's failure
        detector learns that a worker died mid-transfer.  Raises if the
        session was never started (expiring nothing is a bug in the caller).
        """
        with self._lock:
            if client_id not in self._sessions:
                raise ZkError(f"no session {client_id!r} to expire")
            return self.close_session(client_id)

    # ----------------------------------------------------------------- CRUD

    def create(
        self,
        path: str,
        data: bytes = b"",
        ephemeral_owner: str | None = None,
    ) -> None:
        """Create a znode (parents must exist; fails if present)."""
        path = _validate(path)
        with self._lock:
            if path in self._nodes:
                raise ZkError(f"znode {path!r} already exists")
            if _parent(path) not in self._nodes:
                raise ZkError(f"parent of {path!r} does not exist")
            if ephemeral_owner is not None:
                if ephemeral_owner not in self._sessions:
                    raise ZkError(f"no session {ephemeral_owner!r}")
            self._nodes[path] = _Znode(data, ephemeral_owner=ephemeral_owner)
            self._fire(path, "created")

    def ensure_path(self, path: str) -> None:
        """Create a persistent node and all missing ancestors (idempotent)."""
        path = _validate(path)
        with self._lock:
            parts = [p for p in path.split("/") if p]
            current = ""
            for part in parts:
                current += "/" + part
                if current not in self._nodes:
                    self._nodes[current] = _Znode(b"")
                    self._fire(current, "created")

    def get(self, path: str) -> tuple[bytes, int]:
        """(data, version) of a znode."""
        path = _validate(path)
        with self._lock:
            node = self._nodes.get(path)
            if node is None:
                raise ZkError(f"no znode {path!r}")
            return node.data, node.version

    def set(self, path: str, data: bytes, expected_version: int | None = None) -> int:
        """Update data; with ``expected_version`` it is a compare-and-set.
        Returns the new version."""
        path = _validate(path)
        with self._lock:
            node = self._nodes.get(path)
            if node is None:
                raise ZkError(f"no znode {path!r}")
            if expected_version is not None and node.version != expected_version:
                raise ZkError(
                    f"version conflict on {path!r}: "
                    f"expected {expected_version}, is {node.version}"
                )
            node.data = data
            node.version += 1
            self._fire(path, "changed")
            return node.version

    def delete(self, path: str) -> None:
        """Delete a leaf znode."""
        path = _validate(path)
        with self._lock:
            if path not in self._nodes:
                raise ZkError(f"no znode {path!r}")
            if any(_parent(p) == path for p in self._nodes if p != path):
                raise ZkError(f"znode {path!r} has children")
            self._delete_locked(path)

    def exists(self, path: str) -> bool:
        with self._lock:
            return _validate(path) in self._nodes

    def children(self, path: str) -> list[str]:
        """Immediate child names (not full paths), sorted."""
        path = _validate(path)
        with self._lock:
            if path not in self._nodes:
                raise ZkError(f"no znode {path!r}")
            prefix = path if path != "/" else ""
            names = []
            for candidate in self._nodes:
                if candidate != path and _parent(candidate) == path:
                    names.append(candidate[len(prefix) + 1 :])
            return sorted(names)

    # --------------------------------------------------------------- watches

    def watch(self, path: str, callback: Callable[[str, str], None]) -> None:
        """One-shot watch: ``callback(path, event)`` fires on the next
        created/changed/deleted event for ``path``, then disarms."""
        path = _validate(path)
        with self._lock:
            self._watches.setdefault(path, []).append(callback)

    # ------------------------------------------------------------- internals

    def _delete_locked(self, path: str) -> None:
        del self._nodes[path]
        self._fire(path, "deleted")

    def _fire(self, path: str, event: str) -> None:
        callbacks = self._watches.pop(path, [])
        for callback in callbacks:
            callback(path, event)


class CoordinatorStateStore:
    """Mirror of transfer-session metadata in ZooKeeperLite (§6 resilience).

    The coordinator writes each session's command/conf and every SQL-worker
    registration as znodes under ``/coordinator/sessions/<id>``; a
    replacement coordinator (or an operator) reads them back after a crash.
    """

    ROOT = "/coordinator/sessions"

    def __init__(self, zk: ZooKeeperLite):
        self.zk = zk
        zk.ensure_path(self.ROOT)

    def record_session(self, session_id: str, command: str | None, conf: dict) -> None:
        base = f"{self.ROOT}/{session_id}"
        self.zk.ensure_path(base)
        payload = json.dumps({"command": command, "conf": conf}).encode()
        if self.zk.exists(f"{base}/meta"):
            self.zk.set(f"{base}/meta", payload)
        else:
            self.zk.create(f"{base}/meta", payload)
        self.zk.ensure_path(f"{base}/workers")

    def record_worker(
        self, session_id: str, worker_id: int, ip: str, total_workers: int
    ) -> None:
        base = f"{self.ROOT}/{session_id}/workers"
        payload = json.dumps({"ip": ip, "total": total_workers}).encode()
        self.zk.create(f"{base}/{worker_id}", payload)

    def record_status(self, session_id: str, status: str) -> None:
        path = f"{self.ROOT}/{session_id}/status"
        if self.zk.exists(path):
            self.zk.set(path, status.encode())
        else:
            self.zk.create(path, status.encode())

    def sessions(self) -> list[str]:
        return self.zk.children(self.ROOT)

    def session_view(self, session_id: str) -> dict:
        """Everything a replacement coordinator needs to know."""
        base = f"{self.ROOT}/{session_id}"
        meta, _v = self.zk.get(f"{base}/meta")
        view = json.loads(meta.decode())
        workers = {}
        for name in self.zk.children(f"{base}/workers"):
            data, _v = self.zk.get(f"{base}/workers/{name}")
            workers[int(name)] = json.loads(data.decode())
        view["workers"] = workers
        if self.zk.exists(f"{base}/status"):
            status, _v = self.zk.get(f"{base}/status")
            view["status"] = status.decode()
        else:
            view["status"] = "registering"
        return view
