"""Bounded buffers with spill-to-disk backpressure handling.

The paper: "Inside a SQL worker, there is a send-buffer associated with each
target ML worker ... If an ML worker is slow to ingest its data and the
corresponding send buffer becomes full, we can spill it onto the local disks
to synchronize the producer and consumers."  So a full buffer never blocks
the producer — overflow goes to a spill file (or an accounted in-memory
overflow region when no spill directory is configured), and the consumer
drains strictly in FIFO order across the memory/spill boundary.
"""

import os
import pickle
import struct
import threading
import time
from collections import deque
from collections.abc import Sequence

from repro.common.errors import ChannelTimeoutError, TransferError

_LENGTH = struct.Struct(">I")


class SpillableBuffer:
    """FIFO byte-item buffer: bounded memory, unbounded accounted spill."""

    def __init__(
        self,
        capacity_bytes: int,
        spill_path: str | None = None,
        ledger=None,
    ):
        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        self._capacity = capacity_bytes
        self._memory: deque[bytes] = deque()
        self._memory_bytes = 0
        self._spill_path = spill_path
        self._spill_file = None
        self._spill_read_offset = 0
        self._spill_pending = 0  # items in the spill region not yet consumed
        self._overflow: deque[bytes] = deque()  # in-memory spill stand-in
        self._ledger = ledger
        self._closed = False
        self._lock = threading.Lock()
        self._readable = threading.Condition(self._lock)
        self.spilled_bytes = 0

    # ---------------------------------------------------------------- write

    def put(self, item: bytes) -> None:
        """Append an item; spills instead of blocking when memory is full."""
        with self._lock:
            if self._closed:
                raise TransferError("put() on a closed buffer")
            # FIFO across the boundary: once anything sits in spill, new
            # items must follow it there.
            if self._spill_pending == 0 and self._memory_bytes + len(item) <= self._capacity:
                self._memory.append(item)
                self._memory_bytes += len(item)
            else:
                self._spill(item)
            self._readable.notify()

    def close(self) -> None:
        """Signal end of stream; pending items remain readable."""
        with self._lock:
            self._closed = True
            self._readable.notify_all()

    def discard(self) -> None:
        """Drop everything and release the spill file (session teardown).

        Unlike :meth:`close`, pending items are *not* kept readable — a
        blocked or late reader sees immediate EOF — and a spill file that
        was never fully drained is closed and unlinked, so a finished (or
        failed) session leaves nothing on disk.
        """
        with self._lock:
            self._closed = True
            self._memory.clear()
            self._memory_bytes = 0
            self._overflow.clear()
            self._spill_pending = 0
            if self._spill_file is not None:
                path = self._spill_file.name
                self._spill_file.close()
                self._spill_file = None
                self._spill_read_offset = 0
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self._readable.notify_all()

    # ----------------------------------------------------------------- read

    def get(self, timeout: float | None = 30.0) -> bytes | None:
        """Next item in FIFO order, or None at end of stream.

        Raises :class:`TransferError` if nothing arrives within ``timeout``
        (a deadlock guard; the paper's streams always terminate with EOF).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._memory:
                    item = self._memory.popleft()
                    self._memory_bytes -= len(item)
                    self._refill_from_spill()
                    return item
                if self._spill_pending:
                    self._refill_from_spill()
                    continue
                if self._closed:
                    return None
                # The deadline spans wait() wakeups: repeated notifies that
                # deliver nothing (another reader won the race) must not
                # extend the deadlock guard indefinitely.
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise ChannelTimeoutError(
                        f"buffer read timed out after {timeout}s (producer stalled?)"
                    )
                if not self._readable.wait(timeout=remaining):
                    raise ChannelTimeoutError(
                        f"buffer read timed out after {timeout}s (producer stalled?)"
                    )

    def __iter__(self):
        while True:
            item = self.get()
            if item is None:
                return
            yield item

    # ------------------------------------------------------------ internals

    def _spill(self, item: bytes) -> None:
        self.spilled_bytes += len(item)
        if self._ledger is not None:
            self._ledger.add("stream.spilled", len(item))
        if self._spill_path is None:
            self._overflow.append(item)
        else:
            if self._spill_file is None:
                os.makedirs(os.path.dirname(self._spill_path) or ".", exist_ok=True)
                self._spill_file = open(self._spill_path, "w+b")
            self._spill_file.seek(0, os.SEEK_END)
            self._spill_file.write(_LENGTH.pack(len(item)))
            self._spill_file.write(item)
        self._spill_pending += 1

    def _refill_from_spill(self) -> None:
        """Move spilled items back into free memory space, preserving order."""
        while self._spill_pending and self._memory_bytes < self._capacity:
            item = self._read_one_spilled()
            self._memory.append(item)
            self._memory_bytes += len(item)
            self._spill_pending -= 1
        if self._spill_pending == 0 and self._spill_file is not None:
            path = self._spill_file.name
            self._spill_file.close()
            self._spill_file = None
            self._spill_read_offset = 0
            try:
                os.unlink(path)
            except OSError:
                pass

    def _read_one_spilled(self) -> bytes:
        if self._spill_path is None:
            return self._overflow.popleft()
        assert self._spill_file is not None
        self._spill_file.seek(self._spill_read_offset)
        header = self._spill_file.read(_LENGTH.size)
        (length,) = _LENGTH.unpack(header)
        item = self._spill_file.read(length)
        self._spill_read_offset = self._spill_file.tell()
        return item


def encode_row(row: tuple) -> bytes:
    """Serialize one row for the wire (length-accounted pickle)."""
    return pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL)


def decode_row(payload: bytes) -> tuple:
    """Inverse of :func:`encode_row`."""
    return pickle.loads(payload)


_BLOCK_HEADER = struct.Struct(">Q")
_PICKLE_MARKER = b"\x80"  # first byte of every protocol >= 2 pickle


def encode_block(rows: Sequence[tuple]) -> bytes:
    """Serialize a RowBlock — a batch of rows moved as one frame.

    One block is one buffer/spill/socket/broker item, so the whole batch
    costs a single lock acquisition, frame header, and pickle round-trip
    instead of one per row.

    The frame starts with an 8-byte header recording the block's *logical*
    size: the bytes these rows would occupy in the seed's per-row framing.
    All ledger byte accounting charges the logical size, so the simulated
    cost of a transfer is identical at every ``batch_rows`` setting — only
    real wall-clock changes.  (The actual frame is smaller than the logical
    size: per-row pickles each pay protocol/frame/stop overhead that the
    block amortizes.)
    """
    rows = list(rows)
    logical = sum(
        len(pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL)) for row in rows
    )
    return _BLOCK_HEADER.pack(logical) + pickle.dumps(
        rows, protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_block(payload: bytes) -> list[tuple]:
    """Inverse of :func:`encode_block`.

    Also accepts an :func:`encode_row` frame, returned as a one-row block:
    per-row frames are bare pickles and start with the pickle protocol
    marker, block frames start with their length header.  The two framings
    therefore interoperate on one channel, which is what lets
    ``batch_rows=1`` reproduce the seed's per-row wire format exactly.
    """
    if payload[:1] == _PICKLE_MARKER:
        return [pickle.loads(payload)]
    if payload[:1] == _SEQ_MARKER:
        payload = payload[1 + _BLOCK_HEADER.size :]
    return pickle.loads(payload[_BLOCK_HEADER.size :])


_SEQ_MARKER = b"S"  # leading byte of a sequenced frame (0x53)


def encode_seq_block(rows: Sequence[tuple], seq: int) -> bytes:
    """Serialize a *sequenced* RowBlock: a block frame prefixed with a
    marker byte and an 8-byte sequence number.

    Sequence numbers are the §6 replay-dedup handle: a restarted SQL worker
    re-streams its partition from the beginning with the same per-channel
    block numbering, and the receiver drops every frame whose number it has
    already accepted, so each logical row crosses the ML boundary exactly
    once.  The prefix is unambiguous against the other two framings: per-row
    frames start with the pickle protocol marker (0x80) and plain block
    frames with the high byte of their 8-byte logical size (0x00 for any
    realistic block).
    """
    return _SEQ_MARKER + _BLOCK_HEADER.pack(seq) + encode_block(rows)


def split_seq_frame(payload: bytes) -> tuple[int | None, bytes]:
    """(sequence number, inner frame) of a sequenced frame; (None, payload)
    for unsequenced per-row/block frames."""
    if payload[:1] != _SEQ_MARKER:
        return None, payload
    (seq,) = _BLOCK_HEADER.unpack_from(payload, 1)
    return seq, payload[1 + _BLOCK_HEADER.size :]


def block_logical_bytes(payload: bytes) -> int:
    """Accountable size of a frame: its rows' seed (per-row framing) bytes.

    For a per-row frame that is simply ``len(payload)``; for a block frame
    it is read from the header.  Ledgers charge this instead of the wire
    length so byte accounting — and therefore simulated time — is invariant
    under re-batching.

    Payloads that are neither framing (the broker stores opaque records)
    are charged at their wire length.  A block frame is recognized by its
    shape: no leading pickle marker, but one right after the 8-byte header.
    """
    if payload[:1] == _PICKLE_MARKER:
        return len(payload)
    if payload[:1] == _SEQ_MARKER:
        payload = payload[1 + _BLOCK_HEADER.size :]
    if len(payload) > _BLOCK_HEADER.size and payload[8:9] == _PICKLE_MARKER:
        (logical,) = _BLOCK_HEADER.unpack_from(payload)
        return logical
    return len(payload)
