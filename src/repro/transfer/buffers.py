"""Bounded buffers with spill-to-disk backpressure handling.

The paper: "Inside a SQL worker, there is a send-buffer associated with each
target ML worker ... If an ML worker is slow to ingest its data and the
corresponding send buffer becomes full, we can spill it onto the local disks
to synchronize the producer and consumers."  So a full buffer never blocks
the producer — overflow goes to a spill file (or an accounted in-memory
overflow region when no spill directory is configured), and the consumer
drains strictly in FIFO order across the memory/spill boundary.
"""

import os
import pickle
import struct
import threading
from collections import deque
from collections.abc import Sequence

from repro.common.errors import (
    ChannelAbortedError,
    ChannelTimeoutError,
    StorageFullError,
    TransferError,
)
from repro.sim.clock import WALL

_LENGTH = struct.Struct(">I")


class SpillableBuffer:
    """FIFO byte-item buffer: bounded memory, unbounded accounted spill."""

    def __init__(
        self,
        capacity_bytes: int,
        spill_path: str | None = None,
        ledger=None,
        governor=None,
        tenant: str = "default",
        budget=None,
        clock=None,  # repro.sim.clock.Clock | None — read-wait timing
        injector=None,  # FaultInjector | None — dfs.enospc spill window
    ):
        if capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        self._capacity = capacity_bytes
        self._clock = clock or WALL
        # Optional per-session Budget: get() waits are clamped to its
        # remaining time and a cancel wakes blocked readers immediately.
        self._budget = budget
        if budget is not None:
            budget.on_cancel(self._wake_readers)
        # Multi-tenant backpressure isolation: outstanding spill bytes are
        # charged to a SpillGovernor per tenant; the *sender* consults it
        # (before put) so an over-budget tenant throttles itself while other
        # tenants' buffers stay untouched.  Charge/credit only ever touch the
        # governor's own lock, so calling them under this buffer's lock is
        # deadlock-free.
        self._governor = governor
        self._tenant = tenant
        self._memory: deque[bytes] = deque()
        self._memory_bytes = 0
        self._spill_path = spill_path
        self._spill_file = None
        self._spill_read_offset = 0
        self._spill_pending = 0  # items in the spill region not yet consumed
        self._file_pending = 0  # subset of pending that sits in the spill file
        self._spill_failed = False  # disk refused a spill — degrade to memory
        self._injector = injector
        self._overflow: deque[bytes] = deque()  # in-memory spill stand-in
        self._ledger = ledger
        self._closed = False
        self._abort_reason: str | None = None
        self._lock = threading.Lock()
        self._readable = threading.Condition(self._lock)
        self.spilled_bytes = 0
        self._governed = 0  # spilled bytes charged to the governor, not yet credited

    # ---------------------------------------------------------------- write

    def put(self, item: bytes) -> None:
        """Append an item; spills instead of blocking when memory is full."""
        with self._lock:
            if self._closed:
                raise TransferError("put() on a closed buffer")
            # FIFO across the boundary: once anything sits in spill, new
            # items must follow it there.
            if self._spill_pending == 0 and self._memory_bytes + len(item) <= self._capacity:
                self._memory.append(item)
                self._memory_bytes += len(item)
            else:
                self._spill(item)
            self._readable.notify()

    def close(self) -> None:
        """Signal end of stream; pending items remain readable."""
        with self._lock:
            self._closed = True
            self._readable.notify_all()

    def abort(self, reason: str = "producer failed") -> None:
        """Poison the stream: every blocked or future :meth:`get` raises
        :class:`ChannelAbortedError` instead of draining to EOF.  Pending
        items are a truncated prefix of a stream whose producer died, so
        they must never be delivered as if the stream completed.  Sticky —
        a later :meth:`close` does not clear it.  Idempotent."""
        with self._lock:
            if self._abort_reason is None:
                self._abort_reason = reason
            self._closed = True
            self._readable.notify_all()

    def discard(self) -> None:
        """Drop everything and release the spill file (session teardown).

        Unlike :meth:`close`, pending items are *not* kept readable — a
        blocked or late reader sees immediate EOF — and a spill file that
        was never fully drained is closed and unlinked, so a finished (or
        failed) session leaves nothing on disk.
        """
        with self._lock:
            self._closed = True
            self._memory.clear()
            self._memory_bytes = 0
            if self._governor is not None and self._governed:
                self._governor.credit(self._tenant, self._governed)
                self._governed = 0
            self._overflow.clear()
            self._spill_pending = 0
            self._file_pending = 0
            if self._spill_file is not None:
                path = self._spill_file.name
                self._spill_file.close()
                self._spill_file = None
                self._spill_read_offset = 0
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self._readable.notify_all()

    # ----------------------------------------------------------------- read

    def _wake_readers(self) -> None:
        with self._lock:
            self._readable.notify_all()

    def get(self, timeout: float | None = 30.0) -> bytes | None:
        """Next item in FIFO order, or None at end of stream.

        Raises :class:`TransferError` if nothing arrives within ``timeout``
        (a deadlock guard; the paper's streams always terminate with EOF).
        With a session budget installed, the wait is additionally clamped to
        the budget's remaining time and raises the typed
        ``DeadlineExceeded``/``SessionCancelled`` instead of the retryable
        flat-timeout error.
        """
        deadline = None if timeout is None else self._clock.now() + timeout
        with self._lock:
            while True:
                if self._abort_reason is not None:
                    raise ChannelAbortedError(
                        f"stream aborted: {self._abort_reason}"
                    )
                if self._memory:
                    item = self._memory.popleft()
                    self._memory_bytes -= len(item)
                    self._refill_from_spill()
                    return item
                if self._spill_pending:
                    self._refill_from_spill()
                    continue
                if self._closed:
                    return None
                if self._budget is not None:
                    self._budget.check("buffer read")
                # The deadline spans wait() wakeups: repeated notifies that
                # deliver nothing (another reader won the race) must not
                # extend the deadlock guard indefinitely.
                remaining = None if deadline is None else deadline - self._clock.now()
                if remaining is not None and remaining <= 0:
                    raise ChannelTimeoutError(
                        f"buffer read timed out after {timeout}s (producer stalled?)"
                    )
                if self._budget is not None:
                    # Clamped wait: on expiry the loop re-enters and the
                    # budget check (or the flat deadline above) raises.
                    if not self._clock.wait_on(
                        self._readable, self._budget.clamp(remaining)
                    ):
                        self._budget.check("buffer read")
                    continue
                if not self._clock.wait_on(self._readable, remaining):
                    raise ChannelTimeoutError(
                        f"buffer read timed out after {timeout}s (producer stalled?)"
                    )

    def __iter__(self):
        while True:
            item = self.get()
            if item is None:
                return
            yield item

    # ------------------------------------------------------------ internals

    def _spill(self, item: bytes) -> None:
        self.spilled_bytes += len(item)
        if self._ledger is not None:
            self._ledger.add("stream.spilled", len(item))
        if self._governor is not None:
            self._governor.charge(self._tenant, len(item))
            self._governed += len(item)
        if self._spill_path is not None and not self._spill_failed:
            try:
                if self._injector is not None:
                    # dfs.enospc: an injected full-disk window at the spill
                    # site (real spill disks fail with OSError below).
                    self._injector.check_dfs_enospc(
                        f"spill/{self._tenant}/{self._spill_path}"
                    )
                if self._spill_file is None:
                    os.makedirs(
                        os.path.dirname(self._spill_path) or ".", exist_ok=True
                    )
                    self._spill_file = open(self._spill_path, "w+b")
                self._spill_file.seek(0, os.SEEK_END)
                self._spill_file.write(_LENGTH.pack(len(item)))
                self._spill_file.write(item)
                self._file_pending += 1
            except (OSError, StorageFullError):
                # ENOSPC ladder: the spill disk refused the item — degrade to
                # the accounted in-memory overflow region instead of crashing
                # the producer.  Permanently, so FIFO order across the
                # file/overflow boundary stays intact (file items drain
                # strictly before overflow items).
                self._spill_failed = True
                if self._ledger is not None:
                    self._ledger.add("stream.spill_enospc", 1)
                self._overflow.append(item)
        else:
            self._overflow.append(item)
        self._spill_pending += 1

    def _refill_from_spill(self) -> None:
        """Move spilled items back into free memory space, preserving order."""
        while self._spill_pending and self._memory_bytes < self._capacity:
            item = self._read_one_spilled()
            self._memory.append(item)
            self._memory_bytes += len(item)
            self._spill_pending -= 1
            if self._governor is not None:
                self._governor.credit(self._tenant, len(item))
                self._governed = max(self._governed - len(item), 0)
        if self._file_pending == 0 and self._spill_file is not None:
            path = self._spill_file.name
            self._spill_file.close()
            self._spill_file = None
            self._spill_read_offset = 0
            try:
                os.unlink(path)
            except OSError:
                pass

    def _read_one_spilled(self) -> bytes:
        # FIFO across regions: everything that reached the spill file was
        # appended before the first overflow item (degradation is one-way),
        # so the file drains first.
        if self._spill_file is not None and self._file_pending:
            self._spill_file.seek(self._spill_read_offset)
            header = self._spill_file.read(_LENGTH.size)
            (length,) = _LENGTH.unpack(header)
            item = self._spill_file.read(length)
            self._spill_read_offset = self._spill_file.tell()
            self._file_pending -= 1
            return item
        return self._overflow.popleft()


def encode_row(row: tuple) -> bytes:
    """Serialize one row for the wire (length-accounted pickle)."""
    return pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL)


def decode_row(payload: bytes) -> tuple:
    """Inverse of :func:`encode_row`."""
    return pickle.loads(payload)


_BLOCK_HEADER = struct.Struct(">Q")
_PICKLE_MARKER = b"\x80"  # first byte of every protocol >= 2 pickle
_BLOCK_MARKER = b"B"  # leading byte of a RowBlock frame (0x42)
COLUMNAR_MARKER = b"C"  # leading byte of a columnar frame (0x43)


def encode_block(rows: Sequence[tuple]) -> bytes:
    """Serialize a RowBlock — a batch of rows moved as one frame.

    One block is one buffer/spill/socket/broker item, so the whole batch
    costs a single lock acquisition, frame header, and ledger entry instead
    of one per row.

    Frame layout: ``B`` marker, an 8-byte header recording the block's
    *logical* size (the bytes these rows would occupy in the seed's per-row
    framing), then each row as a length-prefixed per-row pickle.  Because
    the body reuses the per-row pickles verbatim, the logical size is the
    sum of the body's row-frame lengths — one serialization pass computes
    both (the seed encoder pickled every row twice: once for the header,
    once inside a block-level list pickle).  All ledger byte accounting
    charges the logical size, so the simulated cost of a transfer is
    identical at every ``batch_rows`` setting — only real wall-clock
    changes.
    """
    frames = [
        pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL) for row in rows
    ]
    logical = sum(len(frame) for frame in frames)
    body = b"".join(_LENGTH.pack(len(frame)) + frame for frame in frames)
    return _BLOCK_MARKER + _BLOCK_HEADER.pack(logical) + body


def _decode_row_frames(body: bytes) -> list[tuple]:
    rows = []
    offset, end = 0, len(body)
    while offset < end:
        (length,) = _LENGTH.unpack_from(body, offset)
        offset += _LENGTH.size
        rows.append(pickle.loads(body[offset : offset + length]))
        offset += length
    return rows


def decode_block(payload: bytes) -> list[tuple]:
    """Inverse of :func:`encode_block`, returning a list of row tuples.

    Accepts every framing on the wire and normalizes to rows:

    * an :func:`encode_row` frame (bare pickle, leading 0x80) becomes a
      one-row block — which is what lets ``batch_rows=1`` reproduce the
      seed's per-row wire format exactly;
    * a sequenced frame is unwrapped (sequence number discarded — use
      :func:`split_seq_frame` when dedup matters);
    * a columnar ``C`` frame is decoded and pivoted to rows, so row-oriented
      receivers interoperate with columnar senders;
    * a legacy headerless block frame (pre-``B`` layout: 8-byte header
      followed by one list pickle) still decodes, recognized by its shape.
    """
    first = payload[:1]
    if first == _PICKLE_MARKER:
        return [pickle.loads(payload)]
    if first == _SEQ_MARKER:
        payload = payload[1 + _BLOCK_HEADER.size :]
        first = payload[:1]
    if first == _BLOCK_MARKER:
        return _decode_row_frames(payload[1 + _BLOCK_HEADER.size :])
    if first == COLUMNAR_MARKER:
        return decode_col_block(payload).to_rows()
    return pickle.loads(payload[_BLOCK_HEADER.size :])


def encode_col_block(batch) -> bytes:
    """Serialize a :class:`~repro.columnar.batch.ColumnBatch` as one frame.

    Frame layout: ``C`` marker, 8-byte logical-size header (the batch's
    seed-formula :meth:`logical_bytes`, so ledgers account columnar traffic
    on the same scale as row traffic), then one pickle of the batch's
    column arrays.  numpy arrays pickle as raw buffers, so the whole batch
    costs a handful of memcpys instead of per-row pickling — this is where
    the columnar wire path's speedup comes from.
    """
    names = tuple(column.name for column in batch.schema)
    dtypes = tuple(column.dtype.value for column in batch.schema)
    columns = tuple(
        (vector.data, vector.valid, vector.dictionary) for vector in batch.columns
    )
    body = pickle.dumps(
        (names, dtypes, batch.num_rows, columns), protocol=pickle.HIGHEST_PROTOCOL
    )
    return COLUMNAR_MARKER + _BLOCK_HEADER.pack(batch.logical_bytes()) + body


def decode_col_block(payload: bytes):
    """Inverse of :func:`encode_col_block` (accepts a sequenced wrapper)."""
    from repro.columnar.batch import ColumnBatch, ColumnVector
    from repro.sql.types import DataType, Schema

    if payload[:1] == _SEQ_MARKER:
        payload = payload[1 + _BLOCK_HEADER.size :]
    if payload[:1] != COLUMNAR_MARKER:
        raise TransferError("not a columnar frame")
    names, dtypes, num_rows, columns = pickle.loads(
        payload[1 + _BLOCK_HEADER.size :]
    )
    schema = Schema.of(*((n, DataType(d)) for n, d in zip(names, dtypes)))
    vectors = [
        ColumnVector(DataType(dtype), data, valid, dictionary)
        for dtype, (data, valid, dictionary) in zip(dtypes, columns)
    ]
    return ColumnBatch.from_columns(schema, vectors, num_rows)


def is_columnar_frame(payload: bytes) -> bool:
    """True when the (possibly sequenced) frame carries a ColumnBatch."""
    if payload[:1] == _SEQ_MARKER:
        payload = payload[1 + _BLOCK_HEADER.size :]
    return payload[:1] == COLUMNAR_MARKER


_SEQ_MARKER = b"S"  # leading byte of a sequenced frame (0x53)


def encode_seq_block(rows: Sequence[tuple], seq: int) -> bytes:
    """Serialize a *sequenced* RowBlock: a block frame prefixed with a
    marker byte and an 8-byte sequence number.

    Sequence numbers are the §6 replay-dedup handle: a restarted SQL worker
    re-streams its partition from the beginning with the same per-channel
    block numbering, and the receiver drops every frame whose number it has
    already accepted, so each logical row crosses the ML boundary exactly
    once.  The prefix is unambiguous against the other framings: per-row
    frames start with the pickle protocol marker (0x80), block frames with
    ``B`` (0x42), columnar frames with ``C`` (0x43), and legacy headerless
    blocks with the high byte of their 8-byte logical size (0x00 for any
    realistic block).
    """
    return _SEQ_MARKER + _BLOCK_HEADER.pack(seq) + encode_block(rows)


def split_seq_frame(payload: bytes) -> tuple[int | None, bytes]:
    """(sequence number, inner frame) of a sequenced frame; (None, payload)
    for unsequenced per-row/block frames."""
    if payload[:1] != _SEQ_MARKER:
        return None, payload
    (seq,) = _BLOCK_HEADER.unpack_from(payload, 1)
    return seq, payload[1 + _BLOCK_HEADER.size :]


def block_logical_bytes(payload: bytes) -> int:
    """Accountable size of a frame: its rows' seed (per-row framing) bytes.

    For a per-row frame that is simply ``len(payload)``; for a block frame
    it is read from the header.  Ledgers charge this instead of the wire
    length so byte accounting — and therefore simulated time — is invariant
    under re-batching.

    Block (``B``) and columnar (``C``) frames carry their logical size in
    the 8-byte header after the marker.  Payloads that are none of the
    framings (the broker stores opaque records) are charged at their wire
    length; a legacy headerless block frame is recognized by its shape —
    no leading pickle marker, but one right after the 8-byte header.
    """
    first = payload[:1]
    if first == _PICKLE_MARKER:
        return len(payload)
    if first == _SEQ_MARKER:
        payload = payload[1 + _BLOCK_HEADER.size :]
        first = payload[:1]
    if first == _BLOCK_MARKER or first == COLUMNAR_MARKER:
        (logical,) = _BLOCK_HEADER.unpack_from(payload, 1)
        return logical
    if len(payload) > _BLOCK_HEADER.size and payload[8:9] == _PICKLE_MARKER:
        (logical,) = _BLOCK_HEADER.unpack_from(payload)
        return logical
    return len(payload)
