"""Coordinator high availability: leader election, journaled takeover, and
client-side failover.

§6: "First, we need the coordinator service to be resilient itself.  This
can be achieved by using Zookeeper."  PR 2 built the pieces — a
ZooKeeperLite with ephemeral znodes/watches/CAS and a
:class:`~repro.transfer.zk.CoordinatorStateStore` that *wrote* session
state — but nothing ever read the journal back, so a coordinator death
still killed every in-flight session.  This module closes the loop:

* :class:`CoordinatorHAGroup` runs one leader plus standby
  :class:`~repro.transfer.coordinator.Coordinator` replicas.  The leader
  holds an **ephemeral lease znode** (``/coordinators/leader``) tied to its
  ZooKeeper session; standbys watch it.  When the lease vanishes (leader
  crash or session expiry) the watch fires, the next standby CAS-bumps the
  **fencing epoch** (``/coordinators/epoch``), takes the lease, and rebuilds
  every in-flight session's *control* state from the journal.
* :class:`ChannelRegistry` is the data plane's home: channels conceptually
  live on the worker hosts, not inside the coordinator process, so a
  takeover **re-attaches** the live channel objects (buffers, spill files,
  dedup sequence state intact) instead of replaying any data — a coordinator
  failover costs zero re-streamed bytes.
* :class:`FailoverCoordinator` is what clients (the stream table UDF,
  ``SQLStreamInputFormat``, the pipeline) actually talk to: it resolves the
  current leader from ZooKeeperLite before every handshake, and on
  :class:`~repro.common.errors.CoordinatorUnavailableError` retries against
  the new leader with :class:`~repro.faults.recovery.RetryPolicy` backoff —
  re-registering idempotently by ``(session_id, worker_id)`` /
  ``(session_id, channel_id)`` so a mid-handshake failover converges instead
  of double-registering.

Fencing: a deposed-but-alive leader (lease expiry, not crash) is stopped two
ways — its entry guard sees the lease holder changed, and any in-flight
journal write it races through is rejected because its
:class:`CoordinatorStateStore` is bound to a stale epoch.

Everything is off by default (``make_deployment(ha_standbys=0)``); the
non-HA byte ledgers stay bit-identical.
"""

import json
import threading

from repro.common.errors import (
    CoordinatorUnavailableError,
    RetriesExhaustedError,
    TransferError,
)
from repro.faults.recovery import RecoveryManager, RetryPolicy
from repro.sim.clock import WALL
from repro.transfer.coordinator import (
    DEFAULT_BATCH_ROWS,
    DEFAULT_BUFFER_BYTES,
    DEFAULT_TIMEOUT_S,
    Coordinator,
)
from repro.transfer.zk import CoordinatorStateStore, ZkError, ZooKeeperLite

LEADER_PATH = "/coordinators/leader"
EPOCH_PATH = "/coordinators/epoch"


class ChannelRegistry:
    """Session channels, held where they really live: outside the coordinator.

    In the real system every stream channel is a TCP connection between a
    SQL worker and an ML worker — coordinator death does not touch it.  The
    in-process model must say so explicitly: channels register here at split
    planning, a replacement leader re-attaches them during
    :meth:`~repro.transfer.coordinator.Coordinator.adopt_sessions`, and only
    ``close_session`` drops them.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._channels: dict[str, dict] = {}  # session_id -> {ChannelId: chan}

    def register(self, session_id: str, channels: dict) -> None:
        with self._lock:
            self._channels.setdefault(session_id, {}).update(channels)

    def channels_of(self, session_id: str) -> dict:
        with self._lock:
            return dict(self._channels.get(session_id, {}))

    def drop_session(self, session_id: str) -> None:
        with self._lock:
            self._channels.pop(session_id, None)


class CoordinatorHAGroup:
    """One leader + N standby coordinators behind a ZooKeeperLite lease."""

    def __init__(
        self,
        cluster,
        zk: ZooKeeperLite | None = None,
        standbys: int = 1,
        launcher=None,
        default_k: int = 6,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        columnar: bool = False,
        spill_dir: str | None = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        transport: str = "memory",
        recovery=None,
        fault_injector=None,
        failover_retry: RetryPolicy | None = None,
        admission=None,  # SessionAdmission | None — shared across replicas
        worker_pool=None,  # WorkerPoolScheduler | None — shared across replicas
        spill_governor=None,  # SpillGovernor | None — shared across replicas
        retry_budget=None,  # RetryTokenBucket | None — shared across replicas
        default_deadline_s=None,  # float | None — default session deadline
        clock=None,  # repro.sim.clock.Clock | None — group-wide time source
    ):
        if standbys < 1:
            raise TransferError("a HA group needs at least one standby")
        self.clock = clock or WALL
        self.cluster = cluster
        self.zk = zk or ZooKeeperLite()
        self.zk.ensure_path("/coordinators")
        if not self.zk.exists(EPOCH_PATH):
            self.zk.create(EPOCH_PATH, b"0")
        if recovery is None and fault_injector is not None:
            recovery = RecoveryManager(injector=fault_injector, clock=self.clock)
        #: ONE RecoveryManager for the whole group: heartbeat history and
        #: restart budgets survive takeovers (in production this state would
        #: ride the journal; sharing the manager models the same guarantee).
        self.recovery = recovery
        #: same sharing argument for the multi-tenant trio: quota occupancy,
        #: worker-slot leases, and spill budgets are cluster facts, not
        #: leader-process facts — one object each, every replica wired to it.
        self.admission = admission
        self.worker_pool = worker_pool
        self.spill_governor = spill_governor
        #: retry budgets are a deployment-wide allowance, like quotas.
        self.retry_budget = retry_budget
        self.default_deadline_s = default_deadline_s
        self.default_k = default_k
        self.buffer_bytes = buffer_bytes
        self.batch_rows = batch_rows
        self.columnar = columnar
        self.spill_dir = spill_dir
        self.timeout_s = timeout_s
        self.transport = transport
        self.registry = ChannelRegistry()
        self._mux_transports: dict = {}
        self.store = CoordinatorStateStore(self.zk, ledger=cluster.ledger)
        self.failovers = 0
        self._results: dict[str, tuple] = {}  # session -> (result, error)
        self._lock = threading.RLock()
        #: Notified whenever a replica takes the lease: ``await_leader``
        #: waits on this instead of polling, so election-gap waiters wake
        #: the instant the new term starts (and promptly on session cancel).
        self._leader_change = threading.Condition()
        self._last_leader: Coordinator | None = None
        self.coordinators: list[Coordinator] = []
        for i in range(standbys + 1):
            replica = Coordinator(
                cluster,
                launcher=launcher,
                default_k=default_k,
                buffer_bytes=buffer_bytes,
                batch_rows=batch_rows,
                columnar=columnar,
                spill_dir=spill_dir,
                timeout_s=timeout_s,
                transport=transport,
                recovery=self.recovery,
                coordinator_id=f"coordinator-{i}",
                channel_registry=self.registry,
                admission=admission,
                worker_pool=worker_pool,
                spill_governor=spill_governor,
                retry_budget=retry_budget,
                default_deadline_s=default_deadline_s,
                clock=self.clock,
            )
            replica.ha_group = self
            # The shared mux pairs are data plane, like the channel registry:
            # every replica multiplexes over the same per-worker socket pair,
            # so a takeover keeps in-flight tagged streams attached.
            replica._mux_transports = self._mux_transports
            self.coordinators.append(replica)
        self.proxy = FailoverCoordinator(self, retry_policy=failover_retry)
        self._elect(self.coordinators[0])

    # ----------------------------------------------------------- membership

    @property
    def injector(self):
        return self.recovery.injector if self.recovery is not None else None

    @property
    def replicas(self) -> list[Coordinator]:
        return list(self.coordinators)

    def leader_id(self) -> str | None:
        """Who holds the lease right now (None while leaderless)."""
        if not self.zk.exists(LEADER_PATH):
            return None
        data, _v = self.zk.get(LEADER_PATH)
        return json.loads(data.decode())["coordinator_id"]

    def leader(self) -> Coordinator | None:
        leader_id = self.leader_id()
        for replica in self.coordinators:
            if replica.coordinator_id == leader_id and replica.alive:
                return replica
        return None

    def current_epoch(self) -> int:
        data, _v = self.zk.get(EPOCH_PATH)
        return int(data or b"0")

    def await_leader(
        self, timeout: float | None = None, budget=None
    ) -> Coordinator:
        """The current leader, waiting through an election gap.

        Waits on the leader-change condition (notified by :meth:`_elect`),
        not a polling sleep: waiters wake the moment the new term starts.
        With a session budget the bound is clamped to its remaining time and
        a cancel wakes the wait immediately (the post-wake ``check`` turns
        it into the typed error).  The 50 ms re-check cap is a safety net
        for leadership changes that bypass this process's notifier.
        """
        bound = timeout if timeout is not None else self.timeout_s
        if budget is not None:
            budget.check("leader wait")
            bound = budget.clamp(bound)
        deadline = self.clock.now() + bound
        dispose = (
            budget.on_cancel(self._notify_leader_change)
            if budget is not None
            else None
        )
        try:
            with self._leader_change:
                while True:
                    leader = self.leader()
                    if leader is not None:
                        return leader
                    if budget is not None:
                        budget.check("leader wait")
                    remaining = deadline - self.clock.now()
                    if remaining <= 0:
                        raise CoordinatorUnavailableError(
                            "no coordinator holds the leader lease "
                            f"(replicas: {[c.coordinator_id for c in self.coordinators]})"
                        )
                    self.clock.wait_on(
                        self._leader_change, min(remaining, 0.05)
                    )
        finally:
            if dispose is not None:
                dispose()

    def _notify_leader_change(self) -> None:
        with self._leader_change:
            self._leader_change.notify_all()

    # ------------------------------------------------------------- election

    def _elect(self, replica: Coordinator) -> None:
        """Lease + fencing protocol, in the only safe order:

        1. (re)open the candidate's ZooKeeper session;
        2. take the lease — create the ephemeral leader znode;
        3. CAS-bump the fencing epoch, so every journal store bound to an
           older epoch starts refusing writes;
        4. rebuild session control state from the journal (adopt), then arm
           the watch for the *next* failover.
        """
        try:
            self.zk.start_session(replica.coordinator_id)
        except ZkError:
            pass  # still active from a previous term (lease loss, not crash)
        data, version = self.zk.get(EPOCH_PATH)
        epoch = int(data or b"0") + 1
        payload = json.dumps(
            {"coordinator_id": replica.coordinator_id, "epoch": epoch}
        ).encode()
        self.zk.create(LEADER_PATH, payload, ephemeral_owner=replica.coordinator_id)
        self.zk.set(EPOCH_PATH, str(epoch).encode(), expected_version=version)
        self._last_leader = replica
        replica.become_leader(self.store.for_epoch(epoch), epoch)
        self.zk.watch(LEADER_PATH, self._on_lease_event)
        self._notify_leader_change()

    def _on_lease_event(self, _path: str, event: str) -> None:
        if event != "deleted":
            self.zk.watch(LEADER_PATH, self._on_lease_event)  # re-arm
            return
        self._failover()

    def _failover(self) -> None:
        """The lease vanished: elect the next standby, synchronously.

        ZooKeeperLite delivers watches on the mutating call, so the whole
        takeover — lease, epoch bump, journal adoption — completes before
        ``expire_session`` returns, which keeps the chaos tests
        deterministic.
        """
        with self._lock:
            candidates = [
                c for c in self.coordinators if c.alive and c is not self._last_leader
            ]
            if not candidates and self._last_leader is not None and self._last_leader.alive:
                # Everyone else is dead; the deposed leader stands again.
                candidates = [self._last_leader]
            if not candidates:
                # Leaderless: clients get CoordinatorUnavailableError until
                # an operator revives a replica.  Re-arm for that day.
                self.zk.watch(LEADER_PATH, self._on_lease_event)
                return
            self.failovers += 1
            self.cluster.ledger.add("coordinator.failover", 1)
            self._elect(candidates[0])

    # --------------------------------------------------------- chaos hooks

    def kill_leader(self) -> None:
        """Crash the leader process (the ``coordinator.kill`` site): it stops
        serving immediately and its ZooKeeper session expires, which deletes
        the lease and triggers the election."""
        leader = self.leader()
        if leader is None:
            return
        leader.kill()
        self.zk.expire_session(leader.coordinator_id)

    def expire_leader_lease(self) -> None:
        """Expire only the leader's ZooKeeper session (the
        ``coordinator.lease_expire`` site): the process stays alive — the
        dangerous case fencing exists for."""
        leader = self.leader()
        if leader is None:
            return
        self.zk.expire_session(leader.coordinator_id)

    # ------------------------------------------------------ result routing

    def deliver_result(self, session_id: str, result, error) -> None:
        """Route a finished ML job's outcome to the *current* leader.

        The launch thread belongs to whichever replica launched the job; by
        completion time a different replica may lead.  The outcome is
        recorded on the group first (so a takeover racing this call replays
        it during adoption), then applied to the leader's session.
        """
        with self._lock:
            self._results[session_id] = (result, error)
        deadline = self.clock.now() + self.timeout_s
        while True:
            remaining = deadline - self.clock.now()
            if remaining <= 0:
                return  # leaderless; adoption will replay the result
            try:
                # await_leader blocks on the leader-change condition, so no
                # extra sleep is needed between attempts: a lost race with a
                # concurrent takeover just re-resolves immediately.
                leader = self.await_leader(timeout=remaining)
                leader.apply_result(session_id, result, error)
                return
            except CoordinatorUnavailableError:
                continue
            except TransferError:
                return  # session already closed — outcome is moot

    def replay_result(self, session_id: str, coordinator: Coordinator) -> None:
        """Adoption-time half of :meth:`deliver_result`: if the job finished
        while no (or another) leader was serving, apply the recorded outcome
        to the adopting replica's session."""
        with self._lock:
            entry = self._results.get(session_id)
        if entry is None:
            return
        result, error = entry
        with coordinator._lock:
            session = coordinator._sessions.get(session_id)
        if session is not None and not session.result_ready.is_set():
            coordinator._apply_result(session, result, error)

    def journal_dump(self) -> dict:
        """The ZK journal, decoded — uploaded as a CI artifact on failure."""
        return self.store.journal_dump()


class FailoverCoordinator:
    """The client-side failover handle implementing the coordinator API.

    Every handshake resolves the current leader from ZooKeeperLite, consults
    the chaos sites (``coordinator.kill`` / ``coordinator.lease_expire`` /
    ``handshake.drop``), and on :class:`CoordinatorUnavailableError` — or a
    fenced journal write surfacing mid-call — retries against the newly
    elected leader with backoff.  Retries after a *possible* partial
    application (lost response, mid-call failover) switch to the idempotent
    form of each handshake, so convergence never double-registers.
    """

    def __init__(self, group: CoordinatorHAGroup, retry_policy: RetryPolicy | None = None):
        self._group = group
        self._retry = retry_policy or RetryPolicy(
            max_attempts=8, base_delay_s=0.002, max_delay_s=0.05
        )

    def _backoff(self, delay: float) -> None:
        """Failover backoff that wakes early on a leader change.

        On the wall clock, waiting on the group's leader-change condition
        means a completed election cuts the backoff short.  Under a
        virtual clock the wait is a plain sleep: ``wait_on`` cannot
        distinguish a notify from a tick, and the retry loop re-resolves
        the leader either way.
        """
        clock = self._group.clock
        if clock.is_virtual:
            clock.sleep(delay)
            return
        cond = self._group._leader_change
        with cond:
            clock.wait_on(cond, delay)

    # --------------------------------------------- configuration passthrough

    @property
    def cluster(self):
        return self._group.cluster

    @property
    def recovery(self):
        return self._group.recovery

    @property
    def clock(self):
        return self._group.clock

    @property
    def admission(self):
        return self._group.admission

    @property
    def worker_pool(self):
        return self._group.worker_pool

    @property
    def spill_governor(self):
        return self._group.spill_governor

    @property
    def retry_budget(self):
        return self._group.retry_budget

    @property
    def default_deadline_s(self):
        return self._group.default_deadline_s

    @property
    def default_k(self) -> int:
        return self._group.default_k

    @property
    def batch_rows(self) -> int:
        return self._group.batch_rows

    @property
    def columnar(self) -> bool:
        return self._group.columnar

    @property
    def buffer_bytes(self) -> int:
        return self._group.buffer_bytes

    @property
    def timeout_s(self) -> float:
        return self._group.timeout_s

    @property
    def transport(self) -> str:
        return self._group.transport

    @property
    def replicas(self) -> list[Coordinator]:
        return self._group.replicas

    @property
    def ha_group(self) -> CoordinatorHAGroup:
        return self._group

    @property
    def launcher(self):
        return self._group.coordinators[0].launcher

    # ----------------------------------------------------------- the proxy

    def _invoke(self, point: str, method: str, *args, retry_kwargs=None, **kwargs):
        group = self._group
        injector = group.injector
        retry_budget = getattr(group, "retry_budget", None)
        merged = dict(kwargs)
        attempt = 0
        started = group.clock.now()
        # Elapsed cap across *all* retry reasons: under sustained chaos the
        # per-reason attempt counters alone can stack into minutes; a client
        # call never outlives a few handshake timeouts' worth of wall clock.
        elapsed_cap = group.timeout_s * 4
        while True:
            if injector is not None:
                if injector.check_coordinator_kill(point):
                    group.kill_leader()
                if injector.check_lease_expire(point):
                    group.expire_leader_lease()
            try:
                leader = group.await_leader(timeout=group.timeout_s)
                result = getattr(leader, method)(*args, **merged)
            except (CoordinatorUnavailableError, ZkError) as exc:
                if isinstance(exc, ZkError) and "fenced" not in str(exc):
                    raise
                attempt += 1
                if attempt >= self._retry.max_attempts:
                    raise CoordinatorUnavailableError(
                        f"{method} failed {attempt} times across failovers: {exc}"
                    ) from exc
                if retry_budget is not None and not retry_budget.try_acquire():
                    raise RetriesExhaustedError(
                        f"{method}: deployment retry budget exhausted after "
                        f"{attempt} failover attempts: {exc}"
                    ) from exc
                # The call may have half-applied before the old leader fell
                # over; converge idempotently on the new one.
                if retry_kwargs:
                    merged = {**kwargs, **retry_kwargs}
                self._backoff(self._retry.delay_s(attempt - 1, key=method))
                continue
            if injector is not None and injector.check_handshake_drop(point):
                # The server applied the mutation but the response was lost:
                # the client re-issues the handshake, idempotently — but
                # bounded.  An injector configured to drop every response
                # must surface as a typed failure, not an infinite loop.
                attempt += 1
                if (
                    attempt >= self._retry.max_attempts
                    or group.clock.now() - started >= elapsed_cap
                ):
                    raise RetriesExhaustedError(
                        f"{method}: response dropped on every one of "
                        f"{attempt} handshake attempts"
                    )
                if retry_budget is not None and not retry_budget.try_acquire():
                    raise RetriesExhaustedError(
                        f"{method}: deployment retry budget exhausted after "
                        f"{attempt} dropped handshakes"
                    )
                if retry_kwargs:
                    merged = {**kwargs, **retry_kwargs}
                continue
            return result

    # -------------------------------------------------- coordinator API

    def create_session(self, session_id: str, **kwargs):
        return self._invoke(
            "create_session",
            "create_session",
            session_id,
            retry_kwargs={"exists_ok": True},
            **kwargs,
        )

    def session(self, session_id: str):
        return self._invoke("lookup", "session", session_id)

    def live_sessions(self) -> list[str]:
        return self._invoke("lookup", "live_sessions")

    def close_session(self, session_id: str) -> None:
        return self._invoke("close_session", "close_session", session_id)

    def cancel_session(self, session_id: str, reason: str = "client cancel") -> bool:
        return self._invoke("cancel_session", "cancel_session", session_id, reason)

    def register_sql_worker(
        self,
        session_id: str,
        worker_id: int,
        ip: str,
        total_workers: int,
        command: str | None = None,
        args: dict | None = None,
    ):
        return self._invoke(
            "pre_registration",
            "register_sql_worker",
            session_id,
            worker_id,
            ip,
            total_workers,
            command=command,
            args=args,
            retry_kwargs={"reregister_ok": True},
        )

    def plan_input_splits(self, session_id: str, requested: int | None):
        return self._invoke("split_plan", "plan_input_splits", session_id, requested)

    def split_location(self, session_id: str, channel_id) -> str:
        return self._invoke("lookup", "split_location", session_id, channel_id)

    def split_locations(self, session_id: str, channel_ids) -> dict:
        return self._invoke("lookup", "split_locations", session_id, channel_ids)

    def register_ml_worker(self, session_id: str, channel_id):
        return self._invoke(
            "post_split_plan",
            "register_ml_worker",
            session_id,
            channel_id,
            retry_kwargs={"reclaim_ok": True},
        )

    def sql_worker_channels(self, session_id: str, worker_id: int):
        return self._invoke("matchmaking", "sql_worker_channels", session_id, worker_id)

    def wait_result(self, session_id: str, timeout: float | None = None):
        return self._invoke("result", "wait_result", session_id, timeout=timeout)

    def notify_channel_failure(self, session_id: str, sql_worker_id: int, reason: str = ""):
        return self._invoke(
            "recovery", "notify_channel_failure", session_id, sql_worker_id, reason
        )

    def plan_partial_restart(self, session_id: str, sql_worker_id: int, reason: str = ""):
        return self._invoke(
            "recovery", "plan_partial_restart", session_id, sql_worker_id, reason
        )

    def record_heartbeat(self, session_id: str, worker_id: int) -> None:
        return self._invoke("mid_stream", "record_heartbeat", session_id, worker_id)

    def start_liveness_monitor(self, **kwargs):
        return self._group.await_leader().start_liveness_monitor(**kwargs)

    def stop_liveness_monitor(self) -> None:
        for replica in self._group.coordinators:
            replica.stop_liveness_monitor()
