"""Multi-tenant serving: admission control, shared-worker scheduling, and
spill isolation.

Everything before this module ran one streaming session at a time; the
coordinator protocol (§3) never said it had to.  Three small, independent
mechanisms make many concurrent prep+train sessions safe on one deployment:

* :class:`SessionAdmission` — a per-tenant quota gate in front of
  ``create_session``.  At most ``max_concurrent_sessions`` run at once and
  at most ``tenant_quotas[tenant]`` of them belong to one tenant; everyone
  else waits in a bounded FIFO queue.  Promotion is *fair* FIFO: a
  quota-blocked tenant's ticket is skipped (not cancelled) so one noisy
  tenant cannot head-of-line-block the rest of the queue.
* :class:`WorkerPoolScheduler` — fair slot leases over the shared ML worker
  pool.  Each streaming split drain holds one lease; when sessions contend,
  the next free slot goes to a waiter from the session holding the fewest
  slots, so k-reader sessions interleave instead of convoying.  This is
  sound without deadlock because SQL-side senders *never block*
  (:class:`~repro.transfer.buffers.SpillableBuffer.put` spills instead), so
  a reader waiting for a slot only delays its own drain.
* :class:`SpillGovernor` — per-tenant spill-byte budgets.  A tenant whose
  outstanding spilled bytes exceed its budget has its own senders pause
  until its own readers drain (or a bounded wait elapses — the governor
  shapes, it never wedges); other tenants' channels are untouched, which is
  the backpressure-isolation half of multi-tenancy.

All three are off by default (``make_deployment(max_concurrent_sessions=1)``
wires none of them), and their counters — ``admission.queued``,
``admission.rejected``, ``scheduler.waits``, ``governor.throttled``, plus
the overload-shedding counters ``shed.expired``/``shed.preempted`` — are
dedicated ledger categories, so the fault-free Figure 3/4 byte totals stay
bit-identical to the seed unless a deployment opts in.

All three gates also accept an optional per-session
:class:`~repro.runtime.budget.Budget`: waits are clamped to the budget's
remaining time (one shared clock instead of stacked 30s+120s+10s defaults)
and a cancelled budget *wakes* blocked waiters instead of letting them time
out.  Expired queue tickets are shed before promotion, and with
``tenant_priorities`` a full queue sheds its lowest-priority waiter to make
room for a higher-priority arrival.
"""

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.common.errors import AdmissionError
from repro.runtime.budget import Budget
from repro.sim.clock import WALL

DEFAULT_QUEUE_DEPTH = 64


@dataclass
class AdmissionStats:
    """Observability counters for one admission gate."""

    admitted: int = 0
    queued: int = 0
    rejected: int = 0
    timeouts: int = 0
    shed: int = 0
    peak_running: int = 0
    peak_queued: int = 0


@dataclass
class _Ticket:
    session_id: str
    tenant: str
    ready: threading.Event = field(default_factory=threading.Event)
    budget: Budget | None = None
    shed: str | None = None  # "deadline" | "preempted" once dropped from the queue


class SessionAdmission:
    """Per-tenant quotas plus a bounded, fair FIFO queue for sessions.

    ``acquire`` is idempotent by session id — the HA retry path re-issues
    ``create_session`` after a failover, and a session already counted as
    running must not be charged twice.
    """

    def __init__(
        self,
        max_concurrent_sessions: int,
        tenant_quotas: dict[str, int] | None = None,
        max_queue_depth: int = DEFAULT_QUEUE_DEPTH,
        timeout_s: float = 30.0,
        ledger=None,
        tenant_priorities: dict[str, int] | None = None,
        clock=None,  # repro.sim.clock.Clock | None — queue-wait time source
    ):
        if max_concurrent_sessions < 1:
            raise AdmissionError(
                f"max_concurrent_sessions must be >= 1, got {max_concurrent_sessions}"
            )
        self.max_concurrent = int(max_concurrent_sessions)
        self.tenant_quotas = dict(tenant_quotas or {})
        self.max_queue_depth = int(max_queue_depth)
        self.timeout_s = timeout_s
        # Higher number = more important; unlisted tenants default to 0.
        # Only consulted when the queue overflows: a full queue sheds the
        # lowest-priority waiter to make room for a strictly-higher-priority
        # arrival, so background tenants shed first under overload.
        self.tenant_priorities = dict(tenant_priorities or {})
        self._clock = clock or WALL
        self._ledger = ledger
        self._running: dict[str, str] = {}  # session_id -> tenant
        self._queue: list[_Ticket] = []
        self._lock = threading.Lock()
        self.stats = AdmissionStats()

    # ------------------------------------------------------------- admission

    def _tenant_running(self, tenant: str) -> int:
        return sum(1 for t in self._running.values() if t == tenant)

    def _admissible(self, tenant: str) -> bool:
        """Caller holds the lock."""
        if len(self._running) >= self.max_concurrent:
            return False
        quota = self.tenant_quotas.get(tenant)
        return quota is None or self._tenant_running(tenant) < quota

    def _preemptable_locked(self, tenant: str) -> "_Ticket | None":
        """Pick the queued ticket to shed for a full-queue arrival of
        ``tenant``: the oldest waiter among those with the lowest priority,
        and only if strictly below the arrival's.  Caller holds the lock."""
        if not self.tenant_priorities:
            return None
        arrival = self.tenant_priorities.get(tenant, 0)
        victim = None
        victim_pri = arrival
        for ticket in self._queue:
            pri = self.tenant_priorities.get(ticket.tenant, 0)
            if pri < victim_pri:
                victim, victim_pri = ticket, pri
        return victim

    def acquire(
        self,
        session_id: str,
        tenant: str = "default",
        timeout_s: float | None = None,
        budget: Budget | None = None,
    ) -> bool:
        """Block until the session may run.  Returns True when this call
        admitted it, False when it was already running (idempotent retry).

        Raises :class:`AdmissionError` when the queue is full or the wait
        exceeds the timeout — the rejection never disturbs running sessions.
        With a ``budget``, the wait is clamped to ``budget.remaining()`` and
        an expired/cancelled budget surfaces as the typed ``DeadlineExceeded``
        / ``SessionCancelled`` instead of a retryable admission timeout.
        """
        if budget is not None:
            budget.check("admission")
        victim: _Ticket | None = None
        with self._lock:
            if session_id in self._running:
                return False
            if self._admissible(tenant):
                self._admit_locked(session_id, tenant)
                return True
            if len(self._queue) >= self.max_queue_depth:
                victim = self._preemptable_locked(tenant)
                if victim is None:
                    self.stats.rejected += 1
                    if self._ledger is not None:
                        self._ledger.add("admission.rejected", 1)
                    raise AdmissionError(
                        f"admission queue full ({self.max_queue_depth} waiting); "
                        f"session {session_id!r} of tenant {tenant!r} rejected"
                    )
                self._queue.remove(victim)
                victim.shed = "preempted"
                self.stats.shed += 1
                if self._ledger is not None:
                    self._ledger.add("shed.preempted", 1)
            ticket = _Ticket(session_id, tenant, budget=budget)
            self._queue.append(ticket)
            self.stats.queued += 1
            self.stats.peak_queued = max(self.stats.peak_queued, len(self._queue))
            if self._ledger is not None:
                self._ledger.add("admission.queued", 1)
        if victim is not None:
            victim.ready.set()
        effective = timeout_s if timeout_s is not None else self.timeout_s
        dispose = None
        if budget is not None:
            effective = budget.clamp(effective)
            dispose = budget.on_cancel(ticket.ready.set)
        try:
            signalled = self._clock.wait_until(ticket.ready, effective)
        finally:
            if dispose is not None:
                dispose()
        with self._lock:
            if ticket.shed is None and ticket not in self._queue:
                # Promoted — possibly in the race between wait() expiry (or a
                # cancel wake) and lock acquisition; the caller's own budget
                # check decides whether the admitted session still runs.
                return True
            if ticket in self._queue:
                self._queue.remove(ticket)
        if ticket.shed == "preempted":
            raise AdmissionError(
                f"session {session_id!r} of tenant {tenant!r} shed from the "
                f"admission queue by a higher-priority arrival "
                f"(priority {self.tenant_priorities.get(tenant, 0)})"
            )
        if budget is not None:
            if ticket.shed is None and (budget.cancelled or budget.expired):
                # Self-detected expiry/cancel: release() never saw this ticket.
                with self._lock:
                    self.stats.shed += 1
                if self._ledger is not None:
                    self._ledger.add("shed.expired", 1)
            budget.check("admission queue wait")  # raises the typed error
        if not signalled:
            with self._lock:
                self.stats.timeouts += 1
            raise AdmissionError(
                f"session {session_id!r} of tenant {tenant!r} waited "
                f"{effective}s for admission (quota "
                f"{self.tenant_quotas.get(tenant)}, "
                f"{len(self._running)}/{self.max_concurrent} running)"
            )
        return True

    def _admit_locked(self, session_id: str, tenant: str) -> None:
        self._running[session_id] = tenant
        self.stats.admitted += 1
        self.stats.peak_running = max(self.stats.peak_running, len(self._running))

    def release(self, session_id: str) -> None:
        """Free the session's slot and promote as many waiters as now fit
        (fair FIFO, skipping — not cancelling — quota-blocked tenants).
        Expired or cancelled tickets are shed *before* promotion so a free
        slot never goes to a session whose client has already given up."""
        promoted: list[_Ticket] = []
        shed: list[_Ticket] = []
        with self._lock:
            if self._running.pop(session_id, None) is None:
                # A queued session being torn down before it ever ran.
                self._queue = [t for t in self._queue if t.session_id != session_id]
                return
            for ticket in list(self._queue):
                b = ticket.budget
                if b is not None and (b.expired or b.cancelled):
                    self._queue.remove(ticket)
                    ticket.shed = "deadline"
                    self.stats.shed += 1
                    if self._ledger is not None:
                        self._ledger.add("shed.expired", 1)
                    shed.append(ticket)
            for ticket in list(self._queue):
                if not self._admissible(ticket.tenant):
                    continue
                self._queue.remove(ticket)
                self._admit_locked(ticket.session_id, ticket.tenant)
                promoted.append(ticket)
        for ticket in shed:
            ticket.ready.set()
        for ticket in promoted:
            ticket.ready.set()

    # --------------------------------------------------------- HA takeover

    def adopt(self, session_id: str, tenant: str) -> None:
        """Re-sync one journaled running session after a coordinator
        takeover (idempotent — the group-shared gate usually already has it)."""
        with self._lock:
            if session_id not in self._running:
                self._admit_locked(session_id, tenant)

    def adopt_state(self, state: dict | None) -> None:
        """Merge a journaled :meth:`queue_state` snapshot (running set only:
        queued clients are still blocked in their own ``acquire`` calls and
        will re-enter through the live gate)."""
        if not state:
            return
        for session_id, tenant in (state.get("running") or {}).items():
            self.adopt(session_id, tenant)

    # ------------------------------------------------------- observability

    def queue_state(self) -> dict:
        """Snapshot for the HA journal: who runs, who waits, in what order."""
        with self._lock:
            return {
                "running": dict(self._running),
                "queued": [[t.session_id, t.tenant] for t in self._queue],
            }

    def running_count(self) -> int:
        with self._lock:
            return len(self._running)

    def queued_count(self) -> int:
        with self._lock:
            return len(self._queue)


class WorkerPoolScheduler:
    """Fair, leased sharing of the fixed ML worker pool across sessions.

    One lease = one worker slot draining one input split.  The grant rule is
    least-held-first: a waiter is granted a free slot only if no other
    *waiting* session holds fewer slots, which keeps a wide session (many
    splits) from starving a narrow one.
    """

    def __init__(
        self, total_slots: int, timeout_s: float = 120.0, ledger=None, clock=None
    ):
        if total_slots < 1:
            raise AdmissionError(f"total_slots must be >= 1, got {total_slots}")
        self.total_slots = int(total_slots)
        self.timeout_s = timeout_s
        self._clock = clock or WALL
        self._ledger = ledger
        self._free = int(total_slots)
        self._held: dict[str, int] = {}  # session -> slots held
        self._waiting: dict[str, int] = {}  # session -> waiters blocked
        self._cond = threading.Condition()
        self.waits = 0  # grants that had to block first
        self.peak_sessions = 0

    def _grantable(self, session_id: str) -> bool:
        """Caller holds the condition lock."""
        if self._free < 1:
            return False
        mine = self._held.get(session_id, 0)
        floor = min(
            (self._held.get(s, 0) for s in self._waiting if s != session_id),
            default=mine,
        )
        return mine <= floor

    @contextmanager
    def lease(
        self,
        session_id: str,
        timeout_s: float | None = None,
        budget: Budget | None = None,
    ):
        self.acquire_slot(session_id, timeout_s=timeout_s, budget=budget)
        try:
            yield
        finally:
            self.release_slot(session_id)

    def _wake_all(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def acquire_slot(
        self,
        session_id: str,
        timeout_s: float | None = None,
        budget: Budget | None = None,
    ) -> None:
        effective = timeout_s if timeout_s is not None else self.timeout_s
        dispose = None
        if budget is not None:
            budget.check("worker slot acquire")
            clamped = budget.clamp(effective)
            if clamped is not None:
                effective = clamped
            # Wake this waiter on cancel so it raises SessionCancelled
            # immediately instead of sitting out the slot timeout.
            dispose = budget.on_cancel(self._wake_all)
        deadline = self._clock.now() + effective
        try:
            with self._cond:
                waited = False
                try:
                    while not self._grantable(session_id):
                        if budget is not None:
                            budget.check("worker slot wait")
                        if not waited:
                            waited = True
                            self.waits += 1
                            if self._ledger is not None:
                                self._ledger.add("scheduler.waits", 1)
                            self._waiting[session_id] = (
                                self._waiting.get(session_id, 0) + 1
                            )
                        remaining = deadline - self._clock.now()
                        if remaining <= 0 or not self._clock.wait_on(
                            self._cond, remaining
                        ):
                            if budget is not None:
                                budget.check("worker slot wait")
                            raise AdmissionError(
                                f"session {session_id!r} waited {effective}s for a "
                                f"worker slot ({self.total_slots} total, "
                                f"{len(self._held)} sessions holding)"
                            )
                except BaseException:
                    if waited:
                        self._unwait_locked(session_id)
                    raise
                if waited:
                    self._unwait_locked(session_id)
                self._free -= 1
                self._held[session_id] = self._held.get(session_id, 0) + 1
                self.peak_sessions = max(self.peak_sessions, len(self._held))
        finally:
            if dispose is not None:
                dispose()

    def _unwait_locked(self, session_id: str) -> None:
        count = self._waiting.get(session_id, 0) - 1
        if count > 0:
            self._waiting[session_id] = count
        else:
            self._waiting.pop(session_id, None)

    def release_slot(self, session_id: str) -> None:
        with self._cond:
            held = self._held.get(session_id, 0)
            if held <= 1:
                self._held.pop(session_id, None)
            else:
                self._held[session_id] = held - 1
            self._free += 1
            self._cond.notify_all()

    def held_by(self, session_id: str) -> int:
        with self._cond:
            return self._held.get(session_id, 0)


class SpillGovernor:
    """Per-tenant spill budgets: over-budget tenants throttle *themselves*.

    Channels charge spilled bytes here as they overflow and credit them back
    as readers drain; a sender whose tenant is over budget pauses in
    :meth:`throttle` until the tenant's own readers catch up.  The wait is
    bounded (``timeout_s``) and then proceeds — the governor shapes flow, it
    must never deadlock a stream whose reader has not started yet — and a
    tenant with no configured budget is never touched.
    """

    def __init__(
        self,
        tenant_budgets: dict[str, int] | None = None,
        default_budget: int | None = None,
        timeout_s: float = 10.0,
        ledger=None,
        clock=None,
    ):
        self.tenant_budgets = dict(tenant_budgets or {})
        self.default_budget = default_budget
        self.timeout_s = timeout_s
        self._clock = clock or WALL
        self._ledger = ledger
        self._outstanding: dict[str, int] = {}
        self._cond = threading.Condition()
        self.throttled = 0  # sends that had to pause
        self.forced_through = 0  # throttle waits that hit the bound

    def _budget(self, tenant: str) -> int | None:
        return self.tenant_budgets.get(tenant, self.default_budget)

    def charge(self, tenant: str, nbytes: int) -> None:
        """More of this tenant's bytes sit in spill (called under the
        channel/buffer lock — this only touches the governor's own lock)."""
        if nbytes <= 0:
            return
        with self._cond:
            self._outstanding[tenant] = self._outstanding.get(tenant, 0) + nbytes

    def credit(self, tenant: str, nbytes: int) -> None:
        """Spilled bytes drained back out; unblock the tenant's senders."""
        if nbytes <= 0:
            return
        with self._cond:
            level = self._outstanding.get(tenant, 0) - nbytes
            self._outstanding[tenant] = max(level, 0)
            self._cond.notify_all()

    def outstanding(self, tenant: str) -> int:
        with self._cond:
            return self._outstanding.get(tenant, 0)

    def _wake_all(self) -> None:
        with self._cond:
            self._cond.notify_all()

    def throttle(self, tenant: str, budget: Budget | None = None) -> None:
        """Pause the calling sender while its tenant is over budget.

        With a session ``budget``, the pause is clamped to the budget's
        remaining time and a cancel wakes the sender immediately — the
        governor never raises (it shapes, it doesn't fail); the send path's
        own budget check surfaces the typed error right after.
        """
        cap = self._budget(tenant)
        if cap is None:
            return
        bound = self.timeout_s
        dispose = None
        if budget is not None:
            if budget.cancelled or budget.expired:
                return
            clamped = budget.clamp(bound)
            if clamped is not None:
                bound = clamped
            dispose = budget.on_cancel(self._wake_all)
        deadline = self._clock.now() + bound
        try:
            with self._cond:
                if self._outstanding.get(tenant, 0) <= cap:
                    return
                self.throttled += 1
                if self._ledger is not None:
                    self._ledger.add("governor.throttled", 1)
                while self._outstanding.get(tenant, 0) > cap:
                    if budget is not None and (budget.cancelled or budget.expired):
                        return
                    remaining = deadline - self._clock.now()
                    if remaining <= 0 or not self._clock.wait_on(
                        self._cond, remaining
                    ):
                        self.forced_through += 1
                        return
        finally:
            if dispose is not None:
                dispose()
