"""``SQLStreamInputFormat`` — the ML-side half of the streaming transfer.

"The only change she has to make is to use our specialized
SQLStreamInputFormat in the ML job configuration."  It implements the exact
same :class:`~repro.iofmt.inputformat.InputFormat` contract as the DFS text
formats; ``get_splits`` delegates to the coordinator's split planning
(step 3) and each record reader registers back (step 4) to receive its
channel endpoint (step 6) and then just iterates rows (step 8).

Required job configuration: ``stream.session`` property and a
``coordinator`` object.
"""

from dataclasses import dataclass

from repro.common.errors import TransferError
from repro.iofmt.inputformat import InputFormat, InputSplit, JobConf, RecordReader
from repro.transfer.channel import ChannelId, StreamChannel
from repro.transfer.coordinator import Coordinator


@dataclass(frozen=True)
class StreamSplit(InputSplit):
    """One matched channel, advertising its SQL worker's IP for locality."""

    session_id: str
    channel_id: ChannelId
    location_ip: str

    def locations(self) -> tuple[str, ...]:
        return (self.location_ip,)

    def length(self) -> int:
        return 0  # unknown until streamed; readers report bytes_read instead


class StreamRecordReader(RecordReader):
    """Drains one channel until EOF; exposes ``bytes_read`` for accounting.

    With ``frames=True`` (set by the input format for columnar sessions)
    each received columnar frame is yielded *intact* as one ColumnBatch
    record instead of being pivoted back into rows — the ingestion side
    decides what to do with it.  Row frames still yield per-row either way,
    so mixed streams are fine.
    """

    def __init__(
        self,
        channel: StreamChannel,
        timeout_s: float,
        injector=None,
        frames: bool = False,
        session_id: str = "",
    ):
        self._channel = channel
        self._timeout_s = timeout_s
        self._injector = injector  # FaultInjector | None (§6 ML-side chaos)
        self._frames = frames
        self._session_id = session_id  # kill-site scope (per-session one-shot)
        self.bytes_read = 0
        self.rows_read = 0

    @property
    def duplicate_blocks(self) -> int:
        """§6 replayed blocks this reader's channel dropped by sequence
        number (each logical row still crossed the boundary exactly once)."""
        return self._channel.duplicate_blocks

    @property
    def duplicate_bytes(self) -> int:
        """Logical bytes of the dropped replay blocks."""
        return self._channel.duplicate_bytes

    def __iter__(self):
        # Drain whole frames: one receive (one lock acquisition / frame
        # decode) per block, regardless of how many rows it carries.
        receive = (
            self._channel.receive_frame if self._frames else self._channel.receive_block
        )
        while True:
            before = self._channel.bytes_received
            block = receive(timeout=self._timeout_s)
            if block is None:
                return
            self.bytes_read += self._channel.bytes_received - before
            self.rows_read += len(block)
            if self._injector is not None:
                self._injector.check_ml_kill(
                    self._channel.channel_id.index,
                    self.rows_read,
                    scope=self._session_id,
                )
            if isinstance(block, list):
                yield from block
            else:
                yield block  # a ColumnBatch travels intact as one record


class SQLStreamInputFormat(InputFormat):
    """The job-config-level swap-in replacing DFS input with live channels."""

    def get_splits(self, conf: JobConf, num_splits: int) -> list[InputSplit]:
        coordinator: Coordinator = conf.require_object("coordinator")
        session_id = conf.get("stream.session")
        if not session_id:
            raise ValueError("SQLStreamInputFormat needs the 'stream.session' property")
        # §3: m is taken from the algorithm only when it *pre-specifies* a
        # split count (the stream.num_splits property); otherwise the
        # coordinator chooses m = n * k.  The generic num_splits hint that
        # file formats use is deliberately ignored here.
        requested = conf.get("stream.num_splits")
        channel_ids = coordinator.plan_input_splits(
            session_id, int(requested) if requested else None
        )
        # One batched location lookup instead of n*k round-trips: under HA
        # every handshake crosses the failover proxy (leader resolution +
        # chaos sites), so the m per-split calls would multiply that cost.
        locations = coordinator.split_locations(session_id, channel_ids)
        return [
            StreamSplit(
                session_id=session_id,
                channel_id=cid,
                location_ip=locations[cid],
            )
            for cid in channel_ids
        ]

    def create_record_reader(self, split: InputSplit, conf: JobConf) -> RecordReader:
        if not isinstance(split, StreamSplit):
            raise TypeError(f"SQLStreamInputFormat cannot read {type(split).__name__}")
        coordinator: Coordinator = conf.require_object("coordinator")
        channel = coordinator.register_ml_worker(split.session_id, split.channel_id)
        timeout_s = float(conf.get("stream.timeout_s", coordinator.timeout_s))
        recovery = coordinator.recovery
        injector = recovery.injector if recovery is not None else None
        try:
            frames = coordinator.session(split.session_id).columnar
        except TransferError:
            frames = False
        return StreamRecordReader(
            channel,
            timeout_s,
            injector=injector,
            frames=frames,
            session_id=split.session_id,
        )
