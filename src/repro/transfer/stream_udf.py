"""The SQL-side sender: a parallel table UDF (§3's entry point).

"The data transfer starts from the parallel table UDF in the SQL system.
This UDF takes in as inputs the table to be transferred, the [coordinator],
as well as the command and arguments to invoke the desired ML algorithm."

Usage::

   SELECT * FROM TABLE(stream_transfer((SELECT ...), 'session-1'))

or, self-contained (no pre-configured session)::

   SELECT * FROM TABLE(stream_transfer((SELECT ...), 'session-1',
                                        'svm_with_sgd', 'iterations=10'))

Each invocation registers its worker with the coordinator (step 1), blocks
until matchmaking hands it its k channels (steps 5-7), streams its
partition's rows round-robin across them (step 8), closes with EOF, and
returns a one-row transfer summary.
"""

from collections.abc import Iterable, Sequence

from repro.common.errors import (
    RetriesExhaustedError,
    TransferError,
    WorkerFailedError,
)
from repro.sql.types import DataType, Schema
from repro.sql.udf import TableUDF, UdfContext
from repro.transfer.coordinator import Coordinator


def plan_blocks(
    partition: Sequence[tuple], k: int, batch_rows: int
) -> list[tuple[int, int, list[tuple]]]:
    """Deterministic round-robin blocking of a partition over k channels.

    Returns ``(channel_index, sequence_number, rows)`` triples in send
    order.  Row i goes to channel ``i % k`` exactly as in the seed path, and
    the plan depends only on the partition and the settings — so a restarted
    worker replaying its partition produces *identical* blocks with
    identical per-channel sequence numbers, which is what makes the
    receiver's dedup-by-seq sound (§6).
    """
    batch_rows = max(batch_rows, 1)
    pending: list[list[tuple]] = [[] for _ in range(k)]
    next_seq = [0] * k
    blocks: list[tuple[int, int, list[tuple]]] = []
    for i, row in enumerate(partition):
        target = i % k
        batch = pending[target]
        batch.append(row)
        if len(batch) >= batch_rows:
            blocks.append((target, next_seq[target], list(batch)))
            next_seq[target] += 1
            batch.clear()
    for target, batch in enumerate(pending):
        if batch:  # EOF flush of the partial batch
            blocks.append((target, next_seq[target], list(batch)))
    return blocks


def parse_ml_args(text: str) -> dict:
    """Parse ``'iterations=10,step=0.5'`` style ML argument strings."""
    args: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise TransferError(f"bad ML argument {part!r} (expected key=value)")
        key, value = part.split("=", 1)
        args[key.strip()] = value.strip()
    return args


class StreamTransferUDF(TableUDF):
    """``TABLE(stream_transfer(input, session [, command [, args]]))``."""

    name = "stream_transfer"

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        self._parse_args(args)
        return Schema.of(
            ("worker_id", DataType.INT),
            ("rows_sent", DataType.BIGINT),
            ("bytes_sent", DataType.BIGINT),
            ("spilled_bytes", DataType.BIGINT),
        )

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        session_id, command, ml_args = self._parse_args(args)
        coordinator: Coordinator = ctx.service("coordinator")

        # Step 1: register (worker id, IP, worker count, command+args).
        session = coordinator.register_sql_worker(
            session_id,
            worker_id=ctx.worker_id,
            ip=ctx.node.ip,
            total_workers=ctx.num_workers,
            command=command,
            args=ml_args,
        )
        # Steps 5-7: receive the matched channels.
        channels = coordinator.sql_worker_channels(session_id, ctx.worker_id)
        if not channels:
            raise TransferError(f"worker {ctx.worker_id} was matched to no channels")

        # Step 8 with §6 recovery installed: the resilient protocol.
        if coordinator.recovery is not None:
            yield from self._stream_resilient(
                coordinator, session_id, ctx, channels, rows, session.batch_rows
            )
            return

        # Step 8: round-robin fan-out over this worker's k channels.  Row i
        # still goes to channel i % k exactly as in the per-row path, but
        # each channel's rows travel as RowBlocks of up to ``batch_rows``
        # (flushed when full and again at EOF), so the whole batch pays one
        # frame + one lock acquisition.  ``batch_rows=1`` takes the seed's
        # per-row send path verbatim.
        batch_rows = session.batch_rows
        # Cooperative cancellation: senders observe the session budget at
        # batch boundaries (every 256 rows on the per-row path), raising the
        # typed error out of the UDF instead of streaming a doomed session
        # to completion.  budget is always present; check() is a flag read.
        budget = session.budget
        rows_sent = 0
        try:
            if batch_rows <= 1:
                for i, row in enumerate(rows):
                    if budget is not None and i % 256 == 0:
                        budget.check("stream send")
                    channels[i % len(channels)].send_row(row)
                    rows_sent += 1
            else:
                pending: list[list[tuple]] = [[] for _ in channels]
                for i, row in enumerate(rows):
                    target = i % len(channels)
                    batch = pending[target]
                    batch.append(row)
                    rows_sent += 1
                    if len(batch) >= batch_rows:
                        if budget is not None:
                            budget.check("stream send")
                        channels[target].send_many(batch)
                        batch.clear()
                for target, batch in enumerate(pending):
                    if batch:  # EOF flush of the partial batch
                        channels[target].send_many(batch)
        except BaseException as exc:
            # A producer that dies mid-send (budget expiry, injected fault)
            # must poison its channels: clean EOF here would let readers
            # ingest the delivered prefix as if the stream had completed.
            for channel in channels:
                channel.abort(f"{type(exc).__name__}: {exc}")
            raise
        else:
            for channel in channels:
                channel.close()

        yield (
            ctx.worker_id,
            rows_sent,
            sum(c.bytes_sent for c in channels),
            sum(c.spilled_bytes for c in channels),
        )

    def process_batch(self, batch, input_schema: Schema, args: tuple, ctx: UdfContext):
        """Columnar step 8: stream the partition as ``C`` frames, one per
        channel, fanned out by ``batch.slice_step(j, k)`` — the exact
        ``i % k`` row placement of the seed path, computed as an index take
        instead of a per-row dispatch loop.

        Declines (``None`` → the executor re-runs :meth:`process_partition`
        over ``batch.to_rows()``) when the session is not columnar or the §6
        recovery protocol is installed — resilient replay is defined over
        sequenced RowBlocks.
        """
        session_id, command, ml_args = self._parse_args(args)
        coordinator: Coordinator = ctx.service("coordinator")
        # Peek at the session *before* registering: registration is not
        # idempotent, and a decline must leave it to process_partition.
        try:
            columnar = coordinator.session(session_id).columnar
        except TransferError:
            columnar = bool(getattr(coordinator, "columnar", False))
        if not columnar or coordinator.recovery is not None:
            return None

        coordinator.register_sql_worker(
            session_id,
            worker_id=ctx.worker_id,
            ip=ctx.node.ip,
            total_workers=ctx.num_workers,
            command=command,
            args=ml_args,
        )
        channels = coordinator.sql_worker_channels(session_id, ctx.worker_id)
        if not channels:
            raise TransferError(f"worker {ctx.worker_id} was matched to no channels")
        budget = coordinator.session(session_id).budget
        k = len(channels)
        rows_sent = 0
        try:
            for j, channel in enumerate(channels):
                if budget is not None:
                    budget.check("columnar stream send")
                part = batch.slice_step(j, k) if k > 1 else batch
                if len(part):
                    channel.send_col_batch(part)
                    rows_sent += len(part)
        except BaseException as exc:
            # Same truncation guard as the row path: a dead producer's
            # channels abort, they never present a prefix as clean EOF.
            for channel in channels:
                channel.abort(f"{type(exc).__name__}: {exc}")
            raise
        else:
            for channel in channels:
                channel.close()
        return [
            (
                ctx.worker_id,
                rows_sent,
                sum(c.bytes_sent for c in channels),
                sum(c.spilled_bytes for c in channels),
            )
        ]

    def _stream_resilient(
        self,
        coordinator: Coordinator,
        session_id: str,
        ctx: UdfContext,
        channels: list,
        rows: Iterable[tuple],
        batch_rows: int,
    ) -> Iterable[tuple]:
        """Step 8 under the §6 recovery protocol.

        The partition is materialized (it is the unit of replay) and planned
        into sequenced blocks once; each block send beats the heartbeat,
        consults the fault injector, and retries transient channel timeouts
        with backoff.  A worker kill triggers a coordinated partial restart:
        only this worker and its k paired ML readers restart, the whole
        partition replays from block 0 in a *retry epoch* whose bytes charge
        the separate ``stream.retry`` ledger counter, and receivers drop
        already-accepted sequence numbers — so the ML side still ingests
        each logical row exactly once.  Exhausted budgets escalate to
        :meth:`Coordinator.notify_channel_failure`, failing the session so
        the pipeline tier (full restart or DFS degradation) takes over.
        """
        recovery = coordinator.recovery
        injector = recovery.injector
        budget = coordinator.session(session_id).budget
        partition = list(rows)
        blocks = plan_blocks(partition, len(channels), batch_rows)
        epoch = 0
        try:
            while True:
                try:
                    rows_streamed = 0
                    for target, seq, block in blocks:
                        # Budget check per block: DeadlineExceeded and
                        # SessionCancelled are neither WorkerFailedError nor
                        # RetriesExhaustedError, so they skip both recovery
                        # tiers and propagate typed (channels still close).
                        if budget is not None:
                            budget.check("resilient stream send")
                        channel = channels[target]
                        # Beat through the *coordinator*, not the recovery
                        # manager directly: the beat is a control-plane
                        # handshake, so under HA it resolves the current
                        # leader (the mid-stream failover point) while the
                        # data plane below never touches the coordinator.
                        coordinator.record_heartbeat(session_id, ctx.worker_id)
                        injector.check_kill(
                            ctx.worker_id, rows_streamed, scope=session_id
                        )
                        recovery.send_with_retry(
                            lambda c=channel, b=block, s=seq, r=epoch > 0: (
                                c.send_block(b, s, retry=r)
                            ),
                            f"{session_id}/{channel.channel_id}",
                        )
                        rows_streamed += len(block)
                    break
                except WorkerFailedError as exc:
                    # §6: restart this worker with its paired ML readers and
                    # replay the partition; dedup-by-seq absorbs the overlap.
                    recovery.begin_partial_restart(
                        coordinator, session_id, ctx.worker_id, str(exc)
                    )
                    epoch += 1
        except RetriesExhaustedError as exc:
            # Budgets spent: fail the session — which aborts this group's
            # channels, so stuck readers wake with a typed error — and
            # escalate the failure to the pipeline tier.
            coordinator.notify_channel_failure(session_id, ctx.worker_id, str(exc))
            raise
        except BaseException as exc:
            # Typed budget errors (and anything else) also kill the stream
            # mid-send: poison the channels so the delivered prefix can
            # never pass for a complete dataset.
            for channel in channels:
                channel.abort(f"{type(exc).__name__}: {exc}")
            raise
        else:
            for channel in channels:
                channel.close()

        yield (
            ctx.worker_id,
            len(partition),
            sum(c.bytes_sent for c in channels),
            sum(c.spilled_bytes for c in channels),
        )

    @staticmethod
    def _parse_args(args: tuple) -> tuple[str, str | None, dict]:
        if not args:
            raise TransferError("stream_transfer needs at least a session id")
        session_id = str(args[0])
        command = str(args[1]) if len(args) > 1 and args[1] is not None else None
        ml_args = parse_ml_args(str(args[2])) if len(args) > 2 and args[2] else {}
        return session_id, command, ml_args
