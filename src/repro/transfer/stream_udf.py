"""The SQL-side sender: a parallel table UDF (§3's entry point).

"The data transfer starts from the parallel table UDF in the SQL system.
This UDF takes in as inputs the table to be transferred, the [coordinator],
as well as the command and arguments to invoke the desired ML algorithm."

Usage::

   SELECT * FROM TABLE(stream_transfer((SELECT ...), 'session-1'))

or, self-contained (no pre-configured session)::

   SELECT * FROM TABLE(stream_transfer((SELECT ...), 'session-1',
                                        'svm_with_sgd', 'iterations=10'))

Each invocation registers its worker with the coordinator (step 1), blocks
until matchmaking hands it its k channels (steps 5-7), streams its
partition's rows round-robin across them (step 8), closes with EOF, and
returns a one-row transfer summary.
"""

from collections.abc import Iterable

from repro.common.errors import TransferError
from repro.sql.types import DataType, Schema
from repro.sql.udf import TableUDF, UdfContext
from repro.transfer.coordinator import Coordinator


def parse_ml_args(text: str) -> dict:
    """Parse ``'iterations=10,step=0.5'`` style ML argument strings."""
    args: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise TransferError(f"bad ML argument {part!r} (expected key=value)")
        key, value = part.split("=", 1)
        args[key.strip()] = value.strip()
    return args


class StreamTransferUDF(TableUDF):
    """``TABLE(stream_transfer(input, session [, command [, args]]))``."""

    name = "stream_transfer"

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        self._parse_args(args)
        return Schema.of(
            ("worker_id", DataType.INT),
            ("rows_sent", DataType.BIGINT),
            ("bytes_sent", DataType.BIGINT),
            ("spilled_bytes", DataType.BIGINT),
        )

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        session_id, command, ml_args = self._parse_args(args)
        coordinator: Coordinator = ctx.service("coordinator")

        # Step 1: register (worker id, IP, worker count, command+args).
        session = coordinator.register_sql_worker(
            session_id,
            worker_id=ctx.worker_id,
            ip=ctx.node.ip,
            total_workers=ctx.num_workers,
            command=command,
            args=ml_args,
        )
        # Steps 5-7: receive the matched channels.
        channels = coordinator.sql_worker_channels(session_id, ctx.worker_id)
        if not channels:
            raise TransferError(f"worker {ctx.worker_id} was matched to no channels")

        # Step 8: round-robin fan-out over this worker's k channels.  Row i
        # still goes to channel i % k exactly as in the per-row path, but
        # each channel's rows travel as RowBlocks of up to ``batch_rows``
        # (flushed when full and again at EOF), so the whole batch pays one
        # frame + one lock acquisition.  ``batch_rows=1`` takes the seed's
        # per-row send path verbatim.
        batch_rows = session.batch_rows
        rows_sent = 0
        try:
            if batch_rows <= 1:
                for i, row in enumerate(rows):
                    channels[i % len(channels)].send_row(row)
                    rows_sent += 1
            else:
                pending: list[list[tuple]] = [[] for _ in channels]
                for i, row in enumerate(rows):
                    target = i % len(channels)
                    batch = pending[target]
                    batch.append(row)
                    rows_sent += 1
                    if len(batch) >= batch_rows:
                        channels[target].send_many(batch)
                        batch.clear()
                for target, batch in enumerate(pending):
                    if batch:  # EOF flush of the partial batch
                        channels[target].send_many(batch)
        finally:
            for channel in channels:
                channel.close()

        yield (
            ctx.worker_id,
            rows_sent,
            sum(c.bytes_sent for c in channels),
            sum(c.spilled_bytes for c in channels),
        )

    @staticmethod
    def _parse_args(args: tuple) -> tuple[str, str | None, dict]:
        if not args:
            raise TransferError("stream_transfer needs at least a session id")
        session_id = str(args[0])
        command = str(args[1]) if len(args) > 1 and args[1] is not None else None
        ml_args = parse_ml_args(str(args[2])) if len(args) > 2 and args[2] else {}
        return session_id, command, ml_args
