"""The long-standing coordinator service bridging SQL and ML workers (§3).

One :class:`Coordinator` serves many *sessions*; a session is one transfer
(one SQL query feeding one ML job).  The protocol state machine follows
Figure 2 step by step; every blocking wait carries a timeout so a lost
endpoint surfaces as a :class:`TransferError` instead of a hang, and the §6
fault-tolerance hooks (:meth:`Coordinator.notify_channel_failure`,
:meth:`StreamSession.restart_plan`) expose the restart pairing the paper
describes: a failed SQL worker implies restarting all ML workers matched to
it.
"""

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.cluster import Cluster
from repro.common.errors import TransferError
from repro.transfer.channel import ChannelId, StreamChannel

DEFAULT_BUFFER_BYTES = 4096  # the paper's send/receive buffer setting
DEFAULT_BATCH_ROWS = 256  # rows per RowBlock frame; 1 = seed's per-row wire
DEFAULT_TIMEOUT_S = 30.0


@dataclass
class SqlWorkerInfo:
    """Registration record of one SQL worker (step 1)."""

    worker_id: int
    ip: str


@dataclass
class StreamSession:
    """All state of one transfer session."""

    session_id: str
    command: str | None = None
    args: dict = field(default_factory=dict)
    conf_props: dict = field(default_factory=dict)
    buffer_bytes: int = DEFAULT_BUFFER_BYTES
    batch_rows: int = DEFAULT_BATCH_ROWS
    spill_dir: str | None = None
    expected_sql_workers: int | None = None
    sql_workers: dict[int, SqlWorkerInfo] = field(default_factory=dict)
    channels: dict[ChannelId, StreamChannel] = field(default_factory=dict)
    groups: dict[int, list[ChannelId]] = field(default_factory=dict)
    ml_registrations: set[ChannelId] = field(default_factory=set)
    failed: bool = False
    failure_reason: str | None = None
    #: §6 recoverable failures handled by partial restart (post-mortem log)
    recovery_log: list[dict] = field(default_factory=list)
    # events
    all_registered: threading.Event = field(default_factory=threading.Event)
    splits_ready: threading.Event = field(default_factory=threading.Event)
    result_ready: threading.Event = field(default_factory=threading.Event)
    result: Any = None
    error: BaseException | None = None
    launched: bool = False

    def restart_plan(self, sql_worker_id: int) -> dict:
        """§6: which endpoints must restart after a channel failure.

        The failed SQL worker restarts, and *all* ML workers consuming from
        it restart with it, so the transfer can resume consistently.
        """
        return {
            "restart_sql_worker": sql_worker_id,
            "restart_ml_workers": [
                cid.index for cid in self.groups.get(sql_worker_id, [])
            ],
        }


class Coordinator:
    """Registration, launch, split planning, matchmaking, result delivery."""

    def __init__(
        self,
        cluster: Cluster,
        launcher: Callable[["StreamSession"], Any] | None = None,
        default_k: int = 6,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        spill_dir: str | None = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        transport: str = "memory",
        state_store=None,  # CoordinatorStateStore | None (§6 resilience)
        recovery=None,  # RecoveryManager | None — installs §6 recovery
        fault_injector=None,  # FaultInjector | None — convenience wiring
    ):
        if transport not in ("memory", "socket"):
            raise TransferError(f"unknown transport {transport!r}")
        if batch_rows < 1:
            raise TransferError(f"batch_rows must be >= 1, got {batch_rows}")
        self.cluster = cluster
        self.launcher = launcher
        self.default_k = default_k
        self.buffer_bytes = buffer_bytes
        self.batch_rows = batch_rows
        self.spill_dir = spill_dir
        self.timeout_s = timeout_s
        self.transport = transport
        self.state_store = state_store
        if recovery is None and fault_injector is not None:
            from repro.faults.recovery import RecoveryManager

            recovery = RecoveryManager(injector=fault_injector)
        #: §6 recovery driver; when set, streaming senders take the resilient
        #: protocol (sequenced blocks, heartbeats, retries, partial restart).
        self.recovery = recovery
        self._sessions: dict[str, StreamSession] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- sessions

    def create_session(
        self,
        session_id: str,
        command: str | None = None,
        args: dict | None = None,
        conf_props: dict | None = None,
        buffer_bytes: int | None = None,
        batch_rows: int | None = None,
        spill_dir: str | None = None,
    ) -> StreamSession:
        """Pre-configure a session (the pipeline does this before the query)."""
        props = dict(conf_props or {})
        if batch_rows is None:
            batch_rows = int(props.get("stream.batch_rows", self.batch_rows))
        if batch_rows < 1:
            raise TransferError(f"batch_rows must be >= 1, got {batch_rows}")
        with self._lock:
            if session_id in self._sessions:
                raise TransferError(f"session {session_id!r} already exists")
            session = StreamSession(
                session_id=session_id,
                command=command,
                args=dict(args or {}),
                conf_props=props,
                buffer_bytes=buffer_bytes or self.buffer_bytes,
                batch_rows=batch_rows,
                spill_dir=spill_dir if spill_dir is not None else self.spill_dir,
            )
            self._sessions[session_id] = session
        if self.state_store is not None:
            self.state_store.record_session(
                session_id, session.command, session.conf_props
            )
        return session

    def session(self, session_id: str) -> StreamSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise TransferError(
                f"unknown session {session_id!r}; known: {sorted(self._sessions)}"
            )
        return session

    def close_session(self, session_id: str) -> None:
        """Forget a finished session."""
        with self._lock:
            self._sessions.pop(session_id, None)

    # ------------------------------------------------- step 1: registration

    def register_sql_worker(
        self,
        session_id: str,
        worker_id: int,
        ip: str,
        total_workers: int,
        command: str | None = None,
        args: dict | None = None,
    ) -> StreamSession:
        """A SQL worker announces itself; the last one triggers the launch."""
        session = self.session(session_id)
        launch = False
        with self._lock:
            if session.expected_sql_workers is None:
                session.expected_sql_workers = total_workers
            elif session.expected_sql_workers != total_workers:
                raise TransferError(
                    f"inconsistent SQL worker count for {session_id!r}: "
                    f"{session.expected_sql_workers} vs {total_workers}"
                )
            if worker_id in session.sql_workers:
                raise TransferError(
                    f"SQL worker {worker_id} registered twice in {session_id!r}"
                )
            session.sql_workers[worker_id] = SqlWorkerInfo(worker_id, ip)
            if command and session.command is None:
                session.command = command
            if args:
                session.args.update(args)
            if len(session.sql_workers) == session.expected_sql_workers:
                session.all_registered.set()
                if not session.launched:
                    session.launched = True
                    launch = True
        if self.state_store is not None:
            self.state_store.record_worker(session_id, worker_id, ip, total_workers)
        if launch:
            if self.state_store is not None:
                self.state_store.record_status(session_id, "launched")
            self._launch(session)  # step 2
        return session

    def _launch(self, session: StreamSession) -> None:
        if self.launcher is None:
            raise TransferError(
                "coordinator has no ML job launcher configured; cannot run "
                f"session {session.session_id!r}"
            )
        if session.command is None:
            raise TransferError(
                f"session {session.session_id!r} has no ML command to launch"
            )

        def run() -> None:
            try:
                session.result = self.launcher(session)
                if self.state_store is not None:
                    self.state_store.record_status(session.session_id, "completed")
            except BaseException as exc:  # surfaced to wait_result callers
                session.error = exc
                session.failed = True
                session.failure_reason = str(exc)
                # Unblock SQL workers waiting for split planning: they get a
                # prompt error instead of hanging until their timeout.
                session.splits_ready.set()
                if self.state_store is not None:
                    self.state_store.record_status(session.session_id, "failed")
            finally:
                session.result_ready.set()

        thread = threading.Thread(
            target=run, name=f"ml-job-{session.session_id}", daemon=True
        )
        thread.start()

    # ------------------------------------------------ step 3: split planning

    def plan_input_splits(self, session_id: str, requested: int | None) -> list[ChannelId]:
        """Decide the m InputSplits and create their channels.

        m is ``requested`` when the algorithm pre-specifies it, otherwise
        n·k.  The m splits are divided evenly into n groups, group i drawing
        from SQL worker i — and each split's location is that SQL worker's
        IP, the locality hint of the paper.
        """
        session = self.session(session_id)
        if not session.all_registered.wait(timeout=self.timeout_s):
            raise TransferError(
                f"timed out waiting for SQL workers of {session_id!r} to register"
            )
        with self._lock:
            if session.splits_ready.is_set():
                return [cid for group in session.groups.values() for cid in group]
            n = session.expected_sql_workers or 1
            k = int(session.conf_props.get("stream.k", self.default_k))
            m = requested if requested and requested > 0 else n * k
            if m < n:
                m = n  # every SQL worker needs at least one consumer
            base, extra = divmod(m, n)
            channel_ids: list[ChannelId] = []
            index = 0
            for group_position, worker_id in enumerate(sorted(session.sql_workers)):
                group_size = base + (1 if group_position < extra else 0)
                group: list[ChannelId] = []
                for _ in range(group_size):
                    cid = ChannelId(sql_worker_id=worker_id, index=index)
                    spill_path = (
                        f"{session.spill_dir}/spill-{session.session_id}-{worker_id}-{index}.bin"
                        if session.spill_dir
                        else None
                    )
                    local = self._ml_slot_is_local(session, worker_id, index)
                    if self.transport == "socket":
                        from repro.transfer.socket_channel import SocketStreamChannel

                        session.channels[cid] = SocketStreamChannel(
                            cid,
                            buffer_bytes=session.buffer_bytes,
                            ledger=self.cluster.ledger,
                            local=local,
                            receive_timeout_s=self.timeout_s,
                            send_timeout_s=self.timeout_s,
                        )
                    else:
                        session.channels[cid] = StreamChannel(
                            cid,
                            buffer_bytes=session.buffer_bytes,
                            ledger=self.cluster.ledger,
                            spill_path=spill_path,
                            local=local,
                        )
                    group.append(cid)
                    channel_ids.append(cid)
                    index += 1
                session.groups[worker_id] = group
            session.splits_ready.set()
            return channel_ids

    def _ml_slot_is_local(
        self, session: StreamSession, sql_worker_id: int, _index: int
    ) -> bool:
        """Best-effort colocation: an ML reader spawned for a split whose
        location names a live node is considered placed on that node."""
        info = session.sql_workers.get(sql_worker_id)
        if info is None:
            return False
        return any(node.ip == info.ip for node in self.cluster.nodes)

    def split_location(self, session_id: str, channel_id: ChannelId) -> str:
        """The advertised (locality) host of one split."""
        session = self.session(session_id)
        info = session.sql_workers.get(channel_id.sql_worker_id)
        if info is None:
            raise TransferError(
                f"no SQL worker {channel_id.sql_worker_id} in {session_id!r}"
            )
        return info.ip

    # ------------------------------------------- steps 4-6: matchmaking

    def register_ml_worker(self, session_id: str, channel_id: ChannelId) -> StreamChannel:
        """An ML reader claims its split; returns its receive endpoint."""
        session = self.session(session_id)
        if not session.splits_ready.wait(timeout=self.timeout_s):
            raise TransferError(f"splits of {session_id!r} were never planned")
        with self._lock:
            channel = session.channels.get(channel_id)
            if channel is None:
                raise TransferError(
                    f"no channel {channel_id} in session {session_id!r}"
                )
            if channel_id in session.ml_registrations:
                raise TransferError(f"split {channel_id} claimed twice")
            session.ml_registrations.add(channel_id)
            return channel

    def sql_worker_channels(self, session_id: str, worker_id: int) -> list[StreamChannel]:
        """A SQL worker collects its matched send endpoints (blocks on step 3)."""
        session = self.session(session_id)
        if not session.splits_ready.wait(timeout=self.timeout_s):
            raise TransferError(
                f"timed out waiting for split planning in {session_id!r} "
                "(was the ML job launched?)"
            )
        with self._lock:
            group = session.groups.get(worker_id)
            if group is None:
                if session.error is not None:
                    raise TransferError(
                        f"ML job of {session_id!r} failed before matchmaking: "
                        f"{session.failure_reason}"
                    )
                raise TransferError(
                    f"SQL worker {worker_id} has no channel group in {session_id!r}"
                )
            return [session.channels[cid] for cid in group]

    # ----------------------------------------------------- results & faults

    def wait_result(self, session_id: str, timeout: float | None = None):
        """Block until the launched ML job finishes; re-raises its error."""
        session = self.session(session_id)
        if not session.result_ready.wait(timeout=timeout or self.timeout_s * 4):
            raise TransferError(f"ML job of session {session_id!r} never finished")
        if session.error is not None:
            raise TransferError(
                f"ML job of session {session_id!r} failed: {session.error}"
            ) from session.error
        return session.result

    def notify_channel_failure(
        self, session_id: str, sql_worker_id: int, reason: str = ""
    ) -> dict:
        """§6 hook: record a *fatal* failure and return the restart plan.

        This is the no-recovery tier: the session is marked failed and the
        failed worker's channels close so stuck readers see EOF, not a hang.
        When a :class:`~repro.faults.recovery.RecoveryManager` is installed
        the sender calls :meth:`plan_partial_restart` instead and only falls
        back here once the restart budget is exhausted.
        """
        session = self.session(session_id)
        with self._lock:
            session.failed = True
            session.failure_reason = reason or f"channel of SQL worker {sql_worker_id} failed"
            # Close the group's channels so stuck readers see EOF, not a hang.
            for cid in session.groups.get(sql_worker_id, []):
                session.channels[cid].close()
        return session.restart_plan(sql_worker_id)

    def plan_partial_restart(
        self, session_id: str, sql_worker_id: int, reason: str = ""
    ) -> dict:
        """§6 executed: the *recoverable* failure path.

        Unlike :meth:`notify_channel_failure` the session stays live and the
        group's channels stay open — the restarted SQL worker will replay
        its partition over them with sequenced blocks, and its k paired ML
        readers (exactly the ``restart_plan`` set, nobody else) dedup the
        replay by block sequence number.  The failure is logged on the
        session for post-mortem inspection.
        """
        session = self.session(session_id)
        with self._lock:
            session.recovery_log.append(
                {
                    "sql_worker_id": sql_worker_id,
                    "reason": reason or f"SQL worker {sql_worker_id} failed",
                }
            )
            return session.restart_plan(sql_worker_id)

    def record_heartbeat(self, session_id: str, worker_id: int) -> None:
        """Liveness beat from a streaming worker (delegates to recovery)."""
        if self.recovery is not None:
            self.recovery.heartbeat(session_id, worker_id)
