"""The long-standing coordinator service bridging SQL and ML workers (§3).

One :class:`Coordinator` serves many *sessions*; a session is one transfer
(one SQL query feeding one ML job).  The protocol state machine follows
Figure 2 step by step; every blocking wait carries a timeout so a lost
endpoint surfaces as a :class:`TransferError` instead of a hang, and the §6
fault-tolerance hooks (:meth:`Coordinator.notify_channel_failure`,
:meth:`StreamSession.restart_plan`) expose the restart pairing the paper
describes: a failed SQL worker implies restarting all ML workers matched to
it.
"""

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.cluster import Cluster
from repro.common.errors import (
    CoordinatorUnavailableError,
    DeadlineExceeded,
    SessionCancelled,
    TransferError,
)
from repro.runtime.budget import Budget
from repro.sim.clock import WALL
from repro.transfer.channel import ChannelId, StreamChannel

DEFAULT_BUFFER_BYTES = 4096  # the paper's send/receive buffer setting
DEFAULT_BATCH_ROWS = 256  # rows per RowBlock frame; 1 = seed's per-row wire
DEFAULT_TIMEOUT_S = 30.0


def _as_bool(value) -> bool:
    """Conf-prop boolean: accepts real bools and the usual string spellings."""
    if isinstance(value, str):
        return value.strip().lower() in ("1", "true", "yes", "on")
    return bool(value)


@dataclass
class SqlWorkerInfo:
    """Registration record of one SQL worker (step 1)."""

    worker_id: int
    ip: str


@dataclass
class StreamSession:
    """All state of one transfer session."""

    session_id: str
    command: str | None = None
    args: dict = field(default_factory=dict)
    conf_props: dict = field(default_factory=dict)
    #: multi-tenant serving: whose quota this session runs under
    tenant: str = "default"
    buffer_bytes: int = DEFAULT_BUFFER_BYTES
    batch_rows: int = DEFAULT_BATCH_ROWS
    #: ship ColumnBatch (``C``) frames instead of RowBlocks; off = seed wire
    columnar: bool = False
    spill_dir: str | None = None
    expected_sql_workers: int | None = None
    sql_workers: dict[int, SqlWorkerInfo] = field(default_factory=dict)
    channels: dict[ChannelId, StreamChannel] = field(default_factory=dict)
    groups: dict[int, list[ChannelId]] = field(default_factory=dict)
    ml_registrations: set[ChannelId] = field(default_factory=set)
    failed: bool = False
    failure_reason: str | None = None
    #: §6 recoverable failures handled by partial restart (post-mortem log)
    recovery_log: list[dict] = field(default_factory=list)
    # events
    all_registered: threading.Event = field(default_factory=threading.Event)
    splits_ready: threading.Event = field(default_factory=threading.Event)
    result_ready: threading.Event = field(default_factory=threading.Event)
    result: Any = None
    error: BaseException | None = None
    launched: bool = False
    #: per-session execution budget (deadline + cancel flag + retry tokens);
    #: every blocking wait in the serving plane derives from it
    budget: Budget | None = None

    def restart_plan(self, sql_worker_id: int) -> dict:
        """§6: which endpoints must restart after a channel failure.

        The failed SQL worker restarts, and *all* ML workers consuming from
        it restart with it, so the transfer can resume consistently.
        """
        return {
            "restart_sql_worker": sql_worker_id,
            "restart_ml_workers": [
                cid.index for cid in self.groups.get(sql_worker_id, [])
            ],
        }


class Coordinator:
    """Registration, launch, split planning, matchmaking, result delivery."""

    def __init__(
        self,
        cluster: Cluster,
        launcher: Callable[["StreamSession"], Any] | None = None,
        default_k: int = 6,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        columnar: bool = False,
        spill_dir: str | None = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        transport: str = "memory",
        state_store=None,  # CoordinatorStateStore | None (§6 resilience)
        recovery=None,  # RecoveryManager | None — installs §6 recovery
        fault_injector=None,  # FaultInjector | None — convenience wiring
        coordinator_id: str = "coordinator-0",  # HA replica identity
        channel_registry=None,  # ChannelRegistry | None (HA data plane)
        admission=None,  # SessionAdmission | None — multi-tenant quota gate
        worker_pool=None,  # WorkerPoolScheduler | None — shared ML slots
        spill_governor=None,  # SpillGovernor | None — per-tenant spill budgets
        retry_budget=None,  # RetryTokenBucket | None — shared retry cap
        default_deadline_s: float | None = None,  # deadline for new sessions
        clock=None,  # repro.sim.clock.Clock | None — coordinator time source
    ):
        if transport not in ("memory", "socket"):
            raise TransferError(f"unknown transport {transport!r}")
        if batch_rows < 1:
            raise TransferError(f"batch_rows must be >= 1, got {batch_rows}")
        self.clock = clock or WALL
        self.cluster = cluster
        self.launcher = launcher
        self.default_k = default_k
        self.buffer_bytes = buffer_bytes
        self.batch_rows = batch_rows
        self.columnar = bool(columnar)
        self.spill_dir = spill_dir
        self.timeout_s = timeout_s
        self.transport = transport
        self.state_store = state_store
        if recovery is None and fault_injector is not None:
            from repro.faults.recovery import RecoveryManager

            recovery = RecoveryManager(injector=fault_injector, clock=self.clock)
        #: FaultInjector | None — also threaded into spill buffers so an
        #: armed ``dfs.enospc`` window covers the spill write site; callers
        #: that hand over only a RecoveryManager still arm it.
        self.fault_injector = fault_injector or (
            getattr(recovery, "injector", None) if recovery is not None else None
        )
        #: §6 recovery driver; when set, streaming senders take the resilient
        #: protocol (sequenced blocks, heartbeats, retries, partial restart).
        self.recovery = recovery
        self.coordinator_id = coordinator_id
        #: False once this replica crashed (it stops serving immediately)
        self.alive = True
        #: set by :class:`~repro.transfer.ha.CoordinatorHAGroup` on members
        self.ha_group = None
        #: leader term this replica last served in (fencing token)
        self.fencing_epoch: int | None = None
        #: shared data-plane registry: channels outlive a dead coordinator
        self.channel_registry = channel_registry
        #: multi-tenant serving (all None by default = seed single-session
        #: behavior; shared across replicas under HA like the recovery
        #: manager, so a takeover keeps the same quota/slot/budget state)
        self.admission = admission
        self.worker_pool = worker_pool
        self.spill_governor = spill_governor
        #: overload protection (None by default = seed behavior): a shared
        #: retry-token bucket carried on every session budget, and a default
        #: per-session deadline applied when create_session names none
        self.retry_budget = retry_budget
        self.default_deadline_s = default_deadline_s
        #: one shared mux socket pair per SQL worker (multi-tenant socket
        #: transport only); sessions' channels ride it as tagged streams
        self._mux_transports: dict[int, Any] = {}
        self._monitor = None  # LivenessMonitor | None
        self._sessions: dict[str, StreamSession] = {}
        #: session_id -> cancel reason for recently cancelled sessions, so a
        #: client that was *between* waits when the cancel landed still gets
        #: the typed SessionCancelled, not "unknown session".  Bounded FIFO.
        self._cancel_tombstones: dict[str, str] = {}
        self._lock = threading.Lock()

    _TOMBSTONE_CAP = 1024

    # ----------------------------------------------------- HA: serving state

    def _ensure_serving(self) -> None:
        """Refuse requests unless this replica is alive and (under HA) holds
        the leader lease.  Clients behind a
        :class:`~repro.transfer.ha.FailoverCoordinator` catch the resulting
        :class:`CoordinatorUnavailableError`, re-resolve the leader from
        ZooKeeperLite, and retry the handshake idempotently."""
        if not self.alive:
            raise CoordinatorUnavailableError(
                f"coordinator {self.coordinator_id!r} is dead"
            )
        group = self.ha_group
        if group is not None and group.leader_id() != self.coordinator_id:
            raise CoordinatorUnavailableError(
                f"coordinator {self.coordinator_id!r} lost its leader lease"
            )

    def kill(self) -> None:
        """Crash this replica (chaos hook).  All session events are set so
        threads blocked in a wait wake up, re-check :meth:`_ensure_serving`,
        and surface :class:`CoordinatorUnavailableError` instead of hanging
        out their timeout against a dead service."""
        self.alive = False
        self.stop_liveness_monitor()
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.all_registered.set()
            session.splits_ready.set()
            session.result_ready.set()

    def become_leader(self, state_store, epoch: int) -> list[str]:
        """Take over as leader: bind the fenced journal for this term and
        reconstruct every in-flight session from it.  Returns the adopted
        session ids."""
        self.state_store = state_store
        self.fencing_epoch = epoch
        return self.adopt_sessions()

    def adopt_sessions(self) -> list[str]:
        """Rebuild :class:`StreamSession` control state from the journal.

        Control state (registrations, split plan, ML claims, recovery log,
        status) comes from ZooKeeperLite; live channel objects — the data
        plane, which conceptually lives on the worker hosts, not on the
        coordinator — are re-attached from the shared channel registry, so
        in-flight streams keep their buffers and dedup sequence state and
        nothing is replayed just because the coordinator died.
        """
        store = self.state_store
        if store is None:
            return []
        adopted: list[str] = []
        for session_id in store.sessions():
            with self._lock:
                if session_id in self._sessions:
                    continue
            view = store.session_view(session_id)
            if view["status"] == "closed":
                continue
            settings = view.get("settings") or {}
            session = StreamSession(
                session_id=session_id,
                command=view.get("command"),
                args=dict(view.get("args") or {}),
                conf_props=dict(view.get("conf") or {}),
                tenant=settings.get("tenant", "default"),
                buffer_bytes=int(settings.get("buffer_bytes", self.buffer_bytes)),
                batch_rows=int(settings.get("batch_rows", self.batch_rows)),
                columnar=_as_bool(settings.get("columnar", self.columnar)),
                spill_dir=settings.get("spill_dir", self.spill_dir),
            )
            # Restore the end-to-end budget from its journaled wall-clock
            # deadline (a takeover enforces the session's *remaining* time,
            # not a fresh allowance); sessions journaled without a deadline
            # get a plain unbounded budget, same as the seed path.
            restored = Budget.from_settings(
                settings,
                session_id=session_id,
                retry_tokens=self.retry_budget,
                ledger=self.cluster.ledger,
                clock=self.clock,
            )
            session.budget = restored or Budget(
                session_id=session_id,
                retry_tokens=self.retry_budget,
                ledger=self.cluster.ledger,
                clock=self.clock,
            )
            session.budget.on_cancel(session.all_registered.set)
            session.budget.on_cancel(session.splits_ready.set)
            session.budget.on_cancel(session.result_ready.set)
            # Re-seed the (group-shared) admission gate: usually a no-op
            # because the gate object survived the dead leader, but a cold
            # standby restoring purely from the journal re-admits here.
            if self.admission is not None:
                self.admission.adopt(session_id, session.tenant)
            for worker_id, info in view["workers"].items():
                session.sql_workers[worker_id] = SqlWorkerInfo(worker_id, info["ip"])
                session.expected_sql_workers = info["total"]
            groups = view.get("groups")
            if groups is not None:
                session.groups = {wid: list(cids) for wid, cids in groups.items()}
                live = (
                    self.channel_registry.channels_of(session_id)
                    if self.channel_registry is not None
                    else {}
                )
                for group in session.groups.values():
                    for cid in group:
                        if cid in live:
                            session.channels[cid] = live[cid]
                session.splits_ready.set()
            session.ml_registrations = set(view.get("ml_claims") or [])
            session.recovery_log = list(view.get("recovery_log") or [])
            status = view["status"]
            complete = (
                session.expected_sql_workers is not None
                and len(session.sql_workers) == session.expected_sql_workers
            )
            if complete:
                session.all_registered.set()
            session.launched = status in ("launched", "completed", "failed")
            if status == "failed":
                session.failed = True
                session.failure_reason = "failed before coordinator takeover"
                session.error = TransferError(session.failure_reason)
                session.result_ready.set()
            with self._lock:
                self._sessions[session_id] = session
            if self.ha_group is not None:
                self.ha_group.replay_result(session_id, self)
            # The old leader died between the last registration and the
            # launch record: this term launches the ML job itself.
            if complete and not session.launched and session.command is not None:
                session.launched = True
                store.record_status(session_id, "launched")
                self._launch(session)
            adopted.append(session_id)
        return adopted

    def apply_result(self, session_id: str, result, error) -> None:
        """Deliver a finished ML job's outcome to this replica's session
        (the HA group routes results here so a takeover mid-job still
        unblocks ``wait_result`` callers on the new leader)."""
        self._ensure_serving()
        session = self.session(session_id)
        self._apply_result(session, result, error)

    def _apply_result(self, session: StreamSession, result, error) -> None:
        if error is None:
            session.result = result
            if self.state_store is not None:
                self.state_store.record_status(session.session_id, "completed")
        else:
            session.error = error
            session.failed = True
            session.failure_reason = str(error)
            # Unblock SQL workers waiting for split planning: they get a
            # prompt error instead of hanging until their timeout.
            session.splits_ready.set()
            if self.state_store is not None:
                self.state_store.record_status(session.session_id, "failed")
        session.result_ready.set()

    # ------------------------------------------------------------- sessions

    def create_session(
        self,
        session_id: str,
        command: str | None = None,
        args: dict | None = None,
        conf_props: dict | None = None,
        buffer_bytes: int | None = None,
        batch_rows: int | None = None,
        columnar: bool | None = None,
        spill_dir: str | None = None,
        exists_ok: bool = False,
        tenant: str = "default",
        deadline_s: float | None = None,
    ) -> StreamSession:
        """Pre-configure a session (the pipeline does this before the query).

        ``exists_ok`` is the HA retry path: a client whose create *response*
        was lost in a failover re-issues the call and gets the existing
        session back instead of an error.

        With a :class:`~repro.transfer.admission.SessionAdmission` gate
        installed the call first acquires an admission slot for ``tenant`` —
        blocking in the bounded FIFO queue when the deployment or the tenant
        is at its concurrency cap, raising
        :class:`~repro.common.errors.AdmissionError` when the queue is full
        or the wait times out.  Admission is idempotent by session id, so
        the HA retry re-issuing this call never double-charges a quota.

        ``deadline_s`` arms the session's end-to-end :class:`Budget`: every
        later blocking wait (admission queue, worker-slot, governor pause,
        channel receive, broker fetch, result wait) derives its timeout from
        the budget's remaining time and raises the typed, non-retryable
        :class:`~repro.common.errors.DeadlineExceeded` when it runs out —
        one clock instead of stacked per-layer defaults.  ``deadline_s=None``
        (the default, unless the ``stream.deadline_s`` conf prop or the
        coordinator's ``default_deadline_s`` names one) is the seed path.
        """
        self._ensure_serving()
        props = dict(conf_props or {})
        if batch_rows is None:
            batch_rows = int(props.get("stream.batch_rows", self.batch_rows))
        if batch_rows < 1:
            raise TransferError(f"batch_rows must be >= 1, got {batch_rows}")
        if columnar is None:
            columnar = _as_bool(props.get("stream.columnar", self.columnar))
        if deadline_s is None:
            raw = props.get("stream.deadline_s")
            deadline_s = float(raw) if raw is not None else self.default_deadline_s
        budget = Budget(
            deadline_s=deadline_s,
            session_id=session_id,
            retry_tokens=self.retry_budget,
            ledger=self.cluster.ledger,
            clock=self.clock,
        )
        admitted = False
        if self.admission is not None:
            admitted = self.admission.acquire(
                session_id, tenant=tenant, budget=budget
            )
        try:
            with self._lock:
                existing = self._sessions.get(session_id)
                if existing is not None:
                    if exists_ok:
                        return existing
                    raise TransferError(f"session {session_id!r} already exists")
                session = StreamSession(
                    session_id=session_id,
                    command=command,
                    args=dict(args or {}),
                    conf_props=props,
                    tenant=tenant,
                    buffer_bytes=buffer_bytes or self.buffer_bytes,
                    batch_rows=batch_rows,
                    columnar=bool(columnar),
                    spill_dir=spill_dir if spill_dir is not None else self.spill_dir,
                    budget=budget,
                )
                self._sessions[session_id] = session
                self._cancel_tombstones.pop(session_id, None)  # id reuse
            # A cancel must wake session-event waiters too; each wait site
            # re-checks the budget after waking, so a spurious set is safe.
            budget.on_cancel(session.all_registered.set)
            budget.on_cancel(session.splits_ready.set)
            budget.on_cancel(session.result_ready.set)
        except BaseException:
            if admitted:
                self.admission.release(session_id)
            raise
        if self.state_store is not None:
            settings = {
                "buffer_bytes": session.buffer_bytes,
                "batch_rows": session.batch_rows,
                "columnar": session.columnar,
                "spill_dir": session.spill_dir,
            }
            # Journaled only when multi-tenancy is in play, so single-tenant
            # deployments keep their PR-4 zk.journal byte totals bit-identical.
            if self.admission is not None or tenant != "default":
                settings["tenant"] = tenant
            # Same gating for the budget: journaled (as wall-clock time, so a
            # takeover enforces the *remaining* budget) only when armed.
            if deadline_s is not None:
                settings.update(budget.to_settings())
            self.state_store.record_session(
                session_id,
                session.command,
                session.conf_props,
                args=session.args,
                settings=settings,
            )
            self._journal_admission("admit", session_id, tenant)
        return session

    def _journal_admission(self, event: str, session_id: str, tenant: str) -> None:
        """Journal one admission transition so a takeover (which shares the
        gate object group-wide) can audit it.  Per-transition, not a
        running-set snapshot: the byte total must not depend on how many
        sessions happen to overlap (interleaving noise would leak into the
        ``zk.journal`` counter and break chaos fingerprint replay)."""
        if self.state_store is not None and self.admission is not None:
            self.state_store.record_admission(
                {"event": event, "session": session_id, "tenant": tenant}
            )

    def session(self, session_id: str) -> StreamSession:
        self._ensure_serving()
        with self._lock:
            session = self._sessions.get(session_id)
            tombstone = self._cancel_tombstones.get(session_id)
        if session is None:
            if tombstone is not None:
                raise SessionCancelled(
                    f"session {session_id!r} cancelled: {tombstone}",
                    session_id=session_id,
                )
            raise TransferError(
                f"unknown session {session_id!r}; known: {sorted(self._sessions)}"
            )
        return session

    def live_sessions(self) -> list[str]:
        """Ids of sessions this coordinator currently tracks."""
        self._ensure_serving()
        with self._lock:
            return sorted(self._sessions)

    def close_session(self, session_id: str) -> None:
        """Forget a finished session and release its transfer resources:
        still-open channels are closed and their spill files deleted, so a
        completed *or* failed session leaves nothing on disk."""
        self._ensure_serving()
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            return
        # release(), not close(): teardown must never block on a flush to a
        # reader that is already gone, and it drops leftover spill files.
        for channel in list(session.channels.values()):
            channel.release()
        if self.channel_registry is not None:
            self.channel_registry.drop_session(session_id)
        if self.state_store is not None:
            self.state_store.record_status(session_id, "closed")
        # Release the admission slot *after* the channels are torn down, so
        # a promoted waiter never races the dying session for spill files.
        if self.admission is not None:
            self.admission.release(session_id)
            self._journal_admission("release", session_id, session.tenant)

    def cancel_session(self, session_id: str, reason: str = "client cancel") -> bool:
        """Cooperatively cancel one session and tear it down.

        Order matters: the budget's cancel flag flips first (waking every
        blocked wait that derives from it — admission queue, worker slots,
        governor pauses, buffer reads), then a CANCEL control frame goes out
        on each mux channel so remote receivers stop at their next frame
        boundary, then the session is marked failed with a typed
        :class:`SessionCancelled` — unless a real outcome already landed
        (a completed result wins the race; cancel never un-completes a
        session) — and finally ``close_session`` releases the admission
        slot, channels, and spill files.

        Returns True if this call was the first to cancel the session,
        False for repeats or unknown/already-closed sessions (idempotent —
        the HA retry path may re-issue the call against a new leader).
        """
        self._ensure_serving()
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            return False
        budget = session.budget
        first = budget.cancel(reason) if budget is not None else False
        # Tell remote receivers over the shared mux wire (in-process and
        # plain-socket channels are woken by the budget callbacks instead).
        for channel in list(session.channels.values()):
            cancel = getattr(channel, "cancel", None)
            if cancel is not None:
                try:
                    cancel()
                except TransferError:
                    pass  # a torn-down wire just means nobody is listening
        with self._lock:
            if session.error is None and session.result is None:
                session.error = SessionCancelled(
                    f"session {session_id!r} cancelled: {reason}",
                    session_id=session_id,
                )
                session.failed = True
                session.failure_reason = str(session.error)
            session.splits_ready.set()
            session.all_registered.set()
            session.result_ready.set()
        if self.state_store is not None and session.failed:
            self.state_store.record_status(session_id, "failed")
        if session.failed:
            with self._lock:
                while len(self._cancel_tombstones) >= self._TOMBSTONE_CAP:
                    self._cancel_tombstones.pop(next(iter(self._cancel_tombstones)))
                self._cancel_tombstones[session_id] = reason
        self.close_session(session_id)
        return first

    # ------------------------------------------------- step 1: registration

    def register_sql_worker(
        self,
        session_id: str,
        worker_id: int,
        ip: str,
        total_workers: int,
        command: str | None = None,
        args: dict | None = None,
        reregister_ok: bool = False,
    ) -> StreamSession:
        """A SQL worker announces itself; the last one triggers the launch.

        ``reregister_ok`` is the HA retry path: re-registration by the same
        ``(session_id, worker_id)`` converges (idempotent) instead of
        erroring, so a handshake whose response was lost in a failover can
        simply be re-issued against the new leader.
        """
        session = self.session(session_id)
        launch = False
        with self._lock:
            if session.expected_sql_workers is None:
                session.expected_sql_workers = total_workers
            elif session.expected_sql_workers != total_workers:
                raise TransferError(
                    f"inconsistent SQL worker count for {session_id!r}: "
                    f"{session.expected_sql_workers} vs {total_workers}"
                )
            if worker_id in session.sql_workers and not reregister_ok:
                raise TransferError(
                    f"SQL worker {worker_id} registered twice in {session_id!r}"
                )
            session.sql_workers[worker_id] = SqlWorkerInfo(worker_id, ip)
            if command and session.command is None:
                session.command = command
            if args:
                session.args.update(args)
            if len(session.sql_workers) == session.expected_sql_workers:
                session.all_registered.set()
                if not session.launched:
                    session.launched = True
                    launch = True
        if self.state_store is not None:
            self.state_store.record_worker(session_id, worker_id, ip, total_workers)
        if launch:
            if self.state_store is not None:
                self.state_store.record_status(session_id, "launched")
            self._launch(session)  # step 2
        return session

    def _launch(self, session: StreamSession) -> None:
        if self.launcher is None:
            raise TransferError(
                "coordinator has no ML job launcher configured; cannot run "
                f"session {session.session_id!r}"
            )
        if session.command is None:
            raise TransferError(
                f"session {session.session_id!r} has no ML command to launch"
            )

        def run() -> None:
            try:
                result, error = self.launcher(session), None
            except BaseException as exc:  # surfaced to wait_result callers
                result, error = None, exc
            # Under HA the outcome goes through the group, which records it
            # and applies it on whichever replica leads *now* — the session
            # object this thread launched from may belong to a dead leader.
            if self.ha_group is not None:
                self.ha_group.deliver_result(session.session_id, result, error)
            else:
                self._apply_result(session, result, error)

        self.clock.spawn(run, name=f"ml-job-{session.session_id}")

    # ------------------------------------------------ step 3: split planning

    def _session_wait(
        self, session: StreamSession, event: threading.Event, what: str
    ) -> bool:
        """Wait on a session handshake event under the session's budget.

        The flat ``timeout_s`` bound is clamped to the budget's remaining
        time; a cancel sets the session events (registered in
        ``create_session``), so waiters wake promptly and the post-wake
        ``budget.check`` converts the spurious set into the typed error.
        Returns the event state for the caller's seed timeout message.
        """
        budget = session.budget
        if budget is None:
            return self.clock.wait_until(event, self.timeout_s)
        budget.check(what)
        fired = self.clock.wait_until(event, budget.clamp(self.timeout_s))
        budget.check(what)
        return fired

    def plan_input_splits(self, session_id: str, requested: int | None) -> list[ChannelId]:
        """Decide the m InputSplits and create their channels.

        m is ``requested`` when the algorithm pre-specifies it, otherwise
        n·k.  The m splits are divided evenly into n groups, group i drawing
        from SQL worker i — and each split's location is that SQL worker's
        IP, the locality hint of the paper.
        """
        session = self.session(session_id)
        if not self._session_wait(
            session, session.all_registered, "SQL worker registration wait"
        ):
            raise TransferError(
                f"timed out waiting for SQL workers of {session_id!r} to register"
            )
        self._ensure_serving()  # a kill() sets the events to wake waiters
        with self._lock:
            if session.splits_ready.is_set():
                return [cid for group in session.groups.values() for cid in group]
            n = session.expected_sql_workers or 1
            k = int(session.conf_props.get("stream.k", self.default_k))
            m = requested if requested and requested > 0 else n * k
            if m < n:
                m = n  # every SQL worker needs at least one consumer
            base, extra = divmod(m, n)
            channel_ids: list[ChannelId] = []
            index = 0
            for group_position, worker_id in enumerate(sorted(session.sql_workers)):
                group_size = base + (1 if group_position < extra else 0)
                group: list[ChannelId] = []
                for _ in range(group_size):
                    cid = ChannelId(sql_worker_id=worker_id, index=index)
                    spill_path = (
                        f"{session.spill_dir}/spill-{session.session_id}-{worker_id}-{index}.bin"
                        if session.spill_dir
                        else None
                    )
                    local = self._ml_slot_is_local(session, worker_id, index)
                    if self.transport == "socket" and self.admission is not None:
                        # Multi-tenant socket transport: all sessions share
                        # one mux pair per SQL worker; each channel is a tag.
                        from repro.transfer.socket_channel import MuxSocketChannel

                        session.channels[cid] = MuxSocketChannel(
                            cid,
                            self._mux_transport_for(worker_id, session),
                            ledger=self.cluster.ledger,
                            local=local,
                            governor=self.spill_governor,
                            tenant=session.tenant,
                            receive_timeout_s=self.timeout_s,
                            budget=session.budget,
                            clock=self.clock,
                        )
                    elif self.transport == "socket":
                        from repro.transfer.socket_channel import SocketStreamChannel

                        session.channels[cid] = SocketStreamChannel(
                            cid,
                            buffer_bytes=session.buffer_bytes,
                            ledger=self.cluster.ledger,
                            local=local,
                            receive_timeout_s=self.timeout_s,
                            send_timeout_s=self.timeout_s,
                            governor=self.spill_governor,
                            tenant=session.tenant,
                            budget=session.budget,
                            clock=self.clock,
                        )
                    else:
                        session.channels[cid] = StreamChannel(
                            cid,
                            buffer_bytes=session.buffer_bytes,
                            ledger=self.cluster.ledger,
                            spill_path=spill_path,
                            local=local,
                            governor=self.spill_governor,
                            tenant=session.tenant,
                            budget=session.budget,
                            clock=self.clock,
                            injector=self.fault_injector,
                        )
                    group.append(cid)
                    channel_ids.append(cid)
                    index += 1
                session.groups[worker_id] = group
            session.splits_ready.set()
        if self.channel_registry is not None:
            self.channel_registry.register(session_id, session.channels)
        if self.state_store is not None:
            self.state_store.record_splits(session_id, session.groups)
        return channel_ids

    def _mux_transport_for(self, sql_worker_id: int, session: StreamSession):
        """The shared mux pair for one SQL worker (created on first use).
        Caller holds ``self._lock`` (split planning)."""
        transport = self._mux_transports.get(sql_worker_id)
        if transport is None:
            from repro.transfer.socket_channel import MuxSocketTransport

            transport = MuxSocketTransport(
                buffer_bytes=session.buffer_bytes,
                receive_timeout_s=self.timeout_s,
                send_timeout_s=self.timeout_s,
                clock=self.clock,
            )
            self._mux_transports[sql_worker_id] = transport
        return transport

    def _ml_slot_is_local(
        self, session: StreamSession, sql_worker_id: int, _index: int
    ) -> bool:
        """Best-effort colocation: an ML reader spawned for a split whose
        location names a live node is considered placed on that node."""
        info = session.sql_workers.get(sql_worker_id)
        if info is None:
            return False
        return any(node.ip == info.ip for node in self.cluster.nodes)

    def split_location(self, session_id: str, channel_id: ChannelId) -> str:
        """The advertised (locality) host of one split."""
        session = self.session(session_id)
        info = session.sql_workers.get(channel_id.sql_worker_id)
        if info is None:
            raise TransferError(
                f"no SQL worker {channel_id.sql_worker_id} in {session_id!r}"
            )
        return info.ip

    def split_locations(
        self, session_id: str, channel_ids: list[ChannelId]
    ) -> dict[ChannelId, str]:
        """Locality hosts of many splits in one handshake round-trip —
        under HA every call crosses the failover proxy, so the input format
        batches its n·k location lookups instead of paying one per split."""
        return {
            cid: self.split_location(session_id, cid) for cid in channel_ids
        }

    # ------------------------------------------- steps 4-6: matchmaking

    def register_ml_worker(
        self, session_id: str, channel_id: ChannelId, reclaim_ok: bool = False
    ) -> StreamChannel:
        """An ML reader claims its split; returns its receive endpoint.

        ``reclaim_ok`` is the HA retry path: the same reader re-claiming its
        split after a failover gets the same channel back (idempotent by
        ``(session_id, channel_id)``) instead of a "claimed twice" error.
        """
        session = self.session(session_id)
        if not self._session_wait(session, session.splits_ready, "split claim wait"):
            raise TransferError(f"splits of {session_id!r} were never planned")
        self._ensure_serving()  # a kill() sets the events to wake waiters
        with self._lock:
            channel = session.channels.get(channel_id)
            if channel is None:
                raise TransferError(
                    f"no channel {channel_id} in session {session_id!r}"
                )
            if channel_id in session.ml_registrations and not reclaim_ok:
                raise TransferError(f"split {channel_id} claimed twice")
            already = channel_id in session.ml_registrations
            session.ml_registrations.add(channel_id)
        if self.state_store is not None and not already:
            self.state_store.record_ml_claim(session_id, channel_id)
        return channel

    def sql_worker_channels(self, session_id: str, worker_id: int) -> list[StreamChannel]:
        """A SQL worker collects its matched send endpoints (blocks on step 3)."""
        session = self.session(session_id)
        if not self._session_wait(
            session, session.splits_ready, "split planning wait"
        ):
            raise TransferError(
                f"timed out waiting for split planning in {session_id!r} "
                "(was the ML job launched?)"
            )
        self._ensure_serving()  # a kill() sets the events to wake waiters
        with self._lock:
            group = session.groups.get(worker_id)
            if group is None:
                if session.error is not None:
                    raise TransferError(
                        f"ML job of {session_id!r} failed before matchmaking: "
                        f"{session.failure_reason}"
                    )
                raise TransferError(
                    f"SQL worker {worker_id} has no channel group in {session_id!r}"
                )
            return [session.channels[cid] for cid in group]

    # ----------------------------------------------------- results & faults

    def wait_result(self, session_id: str, timeout: float | None = None):
        """Block until the launched ML job finishes; re-raises its error.

        ``timeout=0`` means "poll, don't wait" — only ``None`` selects the
        default (``timeout or default`` would silently turn an explicit 0
        into a multi-second block).

        With a budget armed, the wait is clamped to the session's remaining
        time, and a budget outcome set by a worker re-raises *typed*
        (:class:`DeadlineExceeded` / :class:`SessionCancelled`) rather than
        wrapped, so callers and the recovery ladder can tell the
        non-retryable outcomes apart from transient transfer failures.
        """
        session = self.session(session_id)
        budget = session.budget
        effective = timeout if timeout is not None else self.timeout_s * 4
        if budget is not None and budget.deadline_s is not None:
            effective = budget.clamp(effective)
        if not self.clock.wait_until(session.result_ready, effective):
            if budget is not None:
                budget.check("result wait")
            raise TransferError(f"ML job of session {session_id!r} never finished")
        if budget is not None and session.error is None and session.result is None:
            # Woken by the cancel callback, not a real outcome.
            budget.check("result wait")
        self._ensure_serving()  # a kill() sets the events to wake waiters
        if session.error is not None:
            if isinstance(session.error, (DeadlineExceeded, SessionCancelled)):
                raise session.error
            raise TransferError(
                f"ML job of session {session_id!r} failed: {session.error}"
            ) from session.error
        return session.result

    def notify_channel_failure(
        self, session_id: str, sql_worker_id: int, reason: str = ""
    ) -> dict:
        """§6 hook: record a *fatal* failure and return the restart plan.

        This is the no-recovery tier: the session is marked failed and the
        failed worker's channels abort so stuck readers wake with a typed
        ``ChannelAbortedError`` — not a hang, and not a clean EOF that
        would let a truncated stream ingest (and charge ``ml.ingest``) as
        if it had completed.
        When a :class:`~repro.faults.recovery.RecoveryManager` is installed
        the sender calls :meth:`plan_partial_restart` instead and only falls
        back here once the restart budget is exhausted.
        """
        session = self.session(session_id)
        with self._lock:
            session.failed = True
            session.failure_reason = reason or f"channel of SQL worker {sql_worker_id} failed"
            doomed = [
                session.channels[cid]
                for cid in session.groups.get(sql_worker_id, [])
            ]
        # Abort *outside* the lock: like close(), abort() can block on a
        # buffer/socket a backpressured sender holds, and that sender may be
        # about to call back into the coordinator — doing it under
        # self._lock deadlocks.
        reason = session.failure_reason
        for channel in doomed:
            channel.abort(reason)
        return session.restart_plan(sql_worker_id)

    def plan_partial_restart(
        self, session_id: str, sql_worker_id: int, reason: str = ""
    ) -> dict:
        """§6 executed: the *recoverable* failure path.

        Unlike :meth:`notify_channel_failure` the session stays live and the
        group's channels stay open — the restarted SQL worker will replay
        its partition over them with sequenced blocks, and its k paired ML
        readers (exactly the ``restart_plan`` set, nobody else) dedup the
        replay by block sequence number.  The failure is logged on the
        session (and journaled, so a takeover keeps the restart history).
        """
        session = self.session(session_id)
        entry = {
            "sql_worker_id": sql_worker_id,
            "reason": reason or f"SQL worker {sql_worker_id} failed",
        }
        with self._lock:
            session.recovery_log.append(entry)
            plan = session.restart_plan(sql_worker_id)
        if self.state_store is not None:
            self.state_store.record_recovery(session_id, entry)
        return plan

    def record_heartbeat(self, session_id: str, worker_id: int) -> None:
        """Liveness beat from a streaming worker (delegates to recovery).

        Beats cross the control plane — under HA they go through the
        failover proxy, which is what makes a mid-stream leader kill
        observable and survivable (the shared RecoveryManager keeps the
        heartbeat history across takeovers).
        """
        self._ensure_serving()
        if self.recovery is not None:
            self.recovery.heartbeat(session_id, worker_id)

    # ------------------------------------------------- §6 active liveness

    def start_liveness_monitor(
        self,
        interval_s: float = 0.5,
        clock=None,
        sleep=None,
    ):
        """Run a coordinator-side failure detector: a daemon thread that
        periodically sweeps heartbeat timestamps and turns stale workers
        into proactive :meth:`plan_partial_restart` calls, instead of
        waiting for a sender to notice its own death.  Returns the monitor
        (idempotent — an already-running monitor is returned as is)."""
        if self.recovery is None:
            raise TransferError("liveness monitoring needs a RecoveryManager")
        if self._monitor is None:
            from repro.faults.recovery import LivenessMonitor

            kwargs = {"clock": clock if clock is not None else self.clock}
            if sleep is not None:
                kwargs["sleep"] = sleep
            self._monitor = LivenessMonitor(
                self, self.recovery, interval_s=interval_s, **kwargs
            )
            self._monitor.start()
        return self._monitor

    def stop_liveness_monitor(self) -> None:
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None
