"""Parallel streaming data transfer between the SQL and ML systems (§3).

The moving parts, matching Figure 2 of the paper:

1. each SQL worker executes the :class:`~repro.transfer.stream_udf.StreamTransferUDF`
   and *registers* with the long-standing
   :class:`~repro.transfer.coordinator.Coordinator` (worker id, IP, total
   workers, plus the ML command and arguments);
2. once all SQL workers are in, the coordinator *launches* the ML job;
3. the job's :class:`~repro.transfer.sqlstream.SQLStreamInputFormat` asks the
   coordinator for its InputSplits; the coordinator creates m = n·k splits in
   n groups, one group per SQL worker, each advertising that worker's IP as
   its location (the locality hint);
4-6. ML readers register back, the coordinator *matchmakes* SQL-worker IPs
   with ML-worker splits and hands both sides their channel endpoints;
7-8. rows flow over :class:`~repro.transfer.channel.StreamChannel` objects
   with bounded buffers (paper default 4 KB) that *spill to local disk*
   instead of blocking when the ML side is slow — round-robin across each
   SQL worker's k channels.

The SQL output never touches the DFS, and the whole path is accounted under
``stream.*`` ledger categories.
"""

from repro.transfer.buffers import SpillableBuffer
from repro.transfer.channel import StreamChannel
from repro.transfer.coordinator import Coordinator, StreamSession
from repro.transfer.sqlstream import SQLStreamInputFormat, StreamSplit
from repro.transfer.stream_udf import StreamTransferUDF

__all__ = [
    "Coordinator",
    "SpillableBuffer",
    "SQLStreamInputFormat",
    "StreamChannel",
    "StreamSession",
    "StreamSplit",
    "StreamTransferUDF",
]
