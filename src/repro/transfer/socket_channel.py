"""Socket-backed stream channels — §3's step 7 with real kernel sockets.

"Finally, the SQL workers and the ML workers establish the TCP socket
connections, before the actual data transfer starts."  The default
in-memory channel models that; this module *is* it: each channel owns a
connected socket pair, the sender writes length-prefixed frames with a
non-blocking socket whose send buffer is sized to the configured buffer
bytes, and — exactly like the paper's design — a full send buffer does not
block the SQL worker: the overflow spills locally and is flushed as the ML
side drains.

Select the transport per coordinator: ``Coordinator(..., transport="socket")``.
"""

import socket
import struct
from collections import deque
from collections.abc import Sequence

from repro.cluster.cost import CostLedger
from repro.common.errors import ChannelTimeoutError, TransferError
from repro.transfer.buffers import (
    block_logical_bytes,
    decode_block,
    decode_col_block,
    encode_block,
    encode_col_block,
    encode_row,
    encode_seq_block,
    is_columnar_frame,
    split_seq_frame,
)
from repro.transfer.channel import ChannelId

_FRAME = struct.Struct(">I")


class SocketStreamChannel:
    """Same interface as :class:`~repro.transfer.channel.StreamChannel`,
    transported over a connected socket pair."""

    def __init__(
        self,
        channel_id: ChannelId,
        buffer_bytes: int = 4096,
        ledger: CostLedger | None = None,
        spill_path: str | None = None,  # kept for interface parity
        local: bool = False,
        receive_timeout_s: float = 30.0,
        send_timeout_s: float = 30.0,
    ):
        self.channel_id = channel_id
        self.local = local
        self._ledger = ledger
        send_sock, recv_sock = socket.socketpair()
        send_sock.setblocking(False)
        try:
            send_sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes)
            recv_sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)
        except OSError:
            pass  # kernels clamp/deny; the overflow path still engages
        recv_sock.settimeout(receive_timeout_s)
        self._send_timeout_s = send_timeout_s
        self._send_sock = send_sock
        self._recv_sock = recv_sock
        #: frames (or frame tails) the kernel buffer refused, FIFO
        self._overflow: deque[bytes] = deque()
        self._recv_buffer = b""
        self._pending: deque[tuple] = deque()  # rows decoded but not yet read
        self._closed = False
        self.rows_sent = 0
        self.bytes_sent = 0
        self.rows_received = 0
        self.bytes_received = 0
        self.spilled_bytes = 0
        #: §6 replay traffic and dedup counters (see StreamChannel)
        self.retry_bytes = 0
        self.duplicate_blocks = 0
        self.duplicate_bytes = 0
        self._last_seq = -1

    # ------------------------------------------------------------ SQL side

    def send_row(self, row: tuple) -> None:
        self._send_payload(encode_row(row), num_rows=1)

    def send_many(self, rows: Sequence[tuple]) -> None:
        """Send a RowBlock as one length-prefixed frame."""
        if not rows:
            return
        self._send_payload(encode_block(rows), num_rows=len(rows))

    def send_block(self, rows: Sequence[tuple], seq: int, retry: bool = False) -> None:
        """Send a sequenced RowBlock (§6 resilient path; see StreamChannel)."""
        if not rows:
            return
        self._send_payload(encode_seq_block(rows, seq), num_rows=len(rows), retry=retry)

    def send_col_batch(self, batch) -> None:
        """Send a ColumnBatch as one columnar (``C``) frame (see
        :meth:`StreamChannel.send_col_batch`)."""
        if not len(batch):
            return
        self._send_payload(encode_col_block(batch), num_rows=len(batch))

    def _send_payload(self, payload: bytes, num_rows: int, retry: bool = False) -> None:
        if self._closed:
            raise TransferError("send on a closed channel")
        frame = _FRAME.pack(len(payload)) + payload
        self._flush_overflow(blocking=False)
        if self._overflow:
            # strict FIFO: once anything is queued, new frames queue too
            self._spill(frame)
        else:
            sent = self._try_send(frame)
            if sent < len(frame):
                self._spill(frame[sent:])
        logical = block_logical_bytes(payload)
        if retry:
            self.retry_bytes += logical
            if self._ledger is not None:
                self._ledger.add("stream.retry", logical)
            return
        self.rows_sent += num_rows
        self.bytes_sent += logical
        if self._ledger is not None:
            self._ledger.add("stream.sent", logical)
            if not self.local:
                self._ledger.add("stream.net", logical)

    def close(self) -> None:
        """Flush any overflow (blocking — the reader is draining), then
        signal EOF by shutting down the write side."""
        if self._closed:
            return
        self._flush_overflow(blocking=True)
        self._closed = True
        try:
            self._send_sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._send_sock.close()

    def release(self) -> None:
        """Free both socket ends at session teardown (no blocking flush:
        a failed session's unread bytes are dropped, not delivered)."""
        self._closed = True
        self._overflow.clear()
        self._pending.clear()
        for sock in (self._send_sock, self._recv_sock):
            try:
                sock.close()
            except OSError:
                pass

    def _try_send(self, data: bytes) -> int:
        try:
            return self._send_sock.send(data)
        except BlockingIOError:
            return 0

    def _spill(self, data: bytes) -> None:
        self._overflow.append(data)
        self.spilled_bytes += len(data)
        if self._ledger is not None:
            self._ledger.add("stream.spilled", len(data))

    def _flush_overflow(self, blocking: bool) -> None:
        while self._overflow:
            head = self._overflow[0]
            sent = self._try_send(head)
            if sent == len(head):
                self._overflow.popleft()
                continue
            if sent:
                self._overflow[0] = head[sent:]
            if not blocking:
                return
            # Blocking flush: wait for the kernel buffer to drain, with a
            # timeout so a dead reader surfaces as an error, not a hang.
            self._send_sock.settimeout(self._send_timeout_s)
            try:
                remaining = self._overflow.popleft()
                self._send_sock.sendall(remaining)
            except socket.timeout:
                raise ChannelTimeoutError(
                    f"channel {self.channel_id} flush timed out after "
                    f"{self._send_timeout_s}s (reader gone?)"
                ) from None
            finally:
                self._send_sock.setblocking(False)

    # ------------------------------------------------------------- ML side

    def receive_block(self, timeout: float | None = None) -> list[tuple] | None:
        """Next RowBlock (a one-row block when the sender used per-row
        frames), or None at end of stream.  Sequenced frames whose number
        was already accepted are §6 replay duplicates: dropped and counted."""
        if self._pending:
            rows = list(self._pending)
            self._pending.clear()
            return rows
        if timeout is not None:
            self._recv_sock.settimeout(timeout)
        while True:
            header = self._read_exact(_FRAME.size)
            if header is None:
                return None
            (length,) = _FRAME.unpack(header)
            payload = self._read_exact(length)
            if payload is None:
                raise TransferError(
                    f"channel {self.channel_id} truncated mid-frame "
                    f"(expected {length} payload bytes)"
                )
            seq, frame = split_seq_frame(payload)
            if seq is not None:
                if seq <= self._last_seq:
                    self.duplicate_blocks += 1
                    self.duplicate_bytes += block_logical_bytes(frame)
                    continue
                self._last_seq = seq
            rows = decode_block(frame)
            self.rows_received += len(rows)
            self.bytes_received += block_logical_bytes(frame)
            return rows

    def receive_frame(self, timeout: float | None = None):
        """Next frame in its native representation: a ColumnBatch for
        columnar frames, a row list otherwise, None at EOF (see
        :meth:`StreamChannel.receive_frame`)."""
        if self._pending:
            rows = list(self._pending)
            self._pending.clear()
            return rows
        if timeout is not None:
            self._recv_sock.settimeout(timeout)
        while True:
            header = self._read_exact(_FRAME.size)
            if header is None:
                return None
            (length,) = _FRAME.unpack(header)
            payload = self._read_exact(length)
            if payload is None:
                raise TransferError(
                    f"channel {self.channel_id} truncated mid-frame "
                    f"(expected {length} payload bytes)"
                )
            seq, frame = split_seq_frame(payload)
            if seq is not None:
                if seq <= self._last_seq:
                    self.duplicate_blocks += 1
                    self.duplicate_bytes += block_logical_bytes(frame)
                    continue
                self._last_seq = seq
            out = (
                decode_col_block(frame)
                if is_columnar_frame(frame)
                else decode_block(frame)
            )
            self.rows_received += len(out)
            self.bytes_received += block_logical_bytes(frame)
            return out

    def receive(self, timeout: float | None = None) -> tuple | None:
        if not self._pending:
            block = self.receive_block(timeout=timeout)
            if block is None:
                return None
            self._pending.extend(block)
        return self._pending.popleft()

    def __iter__(self):
        while True:
            block = self.receive_block()
            if block is None:
                return
            yield from block

    def _read_exact(self, n: int) -> bytes | None:
        while len(self._recv_buffer) < n:
            try:
                chunk = self._recv_sock.recv(65536)
            except socket.timeout:
                raise ChannelTimeoutError(
                    f"channel {self.channel_id} receive timed out"
                ) from None
            if not chunk:
                if self._recv_buffer:
                    raise TransferError(
                        f"channel {self.channel_id} closed mid-frame"
                    )
                return None  # clean EOF
            self._recv_buffer += chunk
        data, self._recv_buffer = self._recv_buffer[:n], self._recv_buffer[n:]
        return data
