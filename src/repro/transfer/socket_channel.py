"""Socket-backed stream channels — §3's step 7 with real kernel sockets.

"Finally, the SQL workers and the ML workers establish the TCP socket
connections, before the actual data transfer starts."  The default
in-memory channel models that; this module *is* it: each channel owns a
connected socket pair, the sender writes length-prefixed frames with a
non-blocking socket whose send buffer is sized to the configured buffer
bytes, and — exactly like the paper's design — a full send buffer does not
block the SQL worker: the overflow spills locally and is flushed as the ML
side drains.

Select the transport per coordinator: ``Coordinator(..., transport="socket")``.
"""

import itertools
import socket
import struct
import threading
from collections import deque
from collections.abc import Sequence

from repro.cluster.cost import CostLedger
from repro.common.errors import ChannelTimeoutError, SessionCancelled, TransferError
from repro.sim.clock import WALL
from repro.transfer.buffers import (
    block_logical_bytes,
    decode_block,
    decode_col_block,
    encode_block,
    encode_col_block,
    encode_row,
    encode_seq_block,
    is_columnar_frame,
    split_seq_frame,
)
from repro.transfer.channel import ChannelId

_FRAME = struct.Struct(">I")


class SocketStreamChannel:
    """Same interface as :class:`~repro.transfer.channel.StreamChannel`,
    transported over a connected socket pair."""

    def __init__(
        self,
        channel_id: ChannelId,
        buffer_bytes: int = 4096,
        ledger: CostLedger | None = None,
        spill_path: str | None = None,  # kept for interface parity
        local: bool = False,
        receive_timeout_s: float = 30.0,
        send_timeout_s: float = 30.0,
        governor=None,
        tenant: str = "default",
        budget=None,
        clock=None,  # repro.sim.clock.Clock | None — receive/flush timing
    ):
        self.channel_id = channel_id
        self.local = local
        self._ledger = ledger
        self._clock = clock or WALL
        # Multi-tenant backpressure isolation (see StreamChannel): the sender
        # throttles against its tenant's spill budget; spilled bytes are
        # charged on overflow and credited back as the overflow flushes.
        self._governor = governor
        self._tenant = tenant
        self._governed = 0
        # Per-session Budget: receive waits are clamped to its remaining
        # time (sliced so a cancel is observed within ~100ms) and raise the
        # typed DeadlineExceeded/SessionCancelled instead of the retryable
        # flat-timeout error.  budget=None is the seed path, untouched.
        self._budget = budget
        self._receive_timeout_s = receive_timeout_s
        send_sock, recv_sock = socket.socketpair()
        send_sock.setblocking(False)
        try:
            send_sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes)
            recv_sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)
        except OSError:
            pass  # kernels clamp/deny; the overflow path still engages
        recv_sock.settimeout(receive_timeout_s)
        self._send_timeout_s = send_timeout_s
        self._send_sock = send_sock
        self._recv_sock = recv_sock
        #: frames (or frame tails) the kernel buffer refused, FIFO
        self._overflow: deque[bytes] = deque()
        self._recv_buffer = b""
        self._pending: deque[tuple] = deque()  # rows decoded but not yet read
        self._closed = False
        self.rows_sent = 0
        self.bytes_sent = 0
        self.rows_received = 0
        self.bytes_received = 0
        self.spilled_bytes = 0
        #: §6 replay traffic and dedup counters (see StreamChannel)
        self.retry_bytes = 0
        self.duplicate_blocks = 0
        self.duplicate_bytes = 0
        self._last_seq = -1

    # ------------------------------------------------------------ SQL side

    def send_row(self, row: tuple) -> None:
        self._send_payload(encode_row(row), num_rows=1)

    def send_many(self, rows: Sequence[tuple]) -> None:
        """Send a RowBlock as one length-prefixed frame."""
        if not rows:
            return
        self._send_payload(encode_block(rows), num_rows=len(rows))

    def send_block(self, rows: Sequence[tuple], seq: int, retry: bool = False) -> None:
        """Send a sequenced RowBlock (§6 resilient path; see StreamChannel)."""
        if not rows:
            return
        self._send_payload(encode_seq_block(rows, seq), num_rows=len(rows), retry=retry)

    def send_col_batch(self, batch) -> None:
        """Send a ColumnBatch as one columnar (``C``) frame (see
        :meth:`StreamChannel.send_col_batch`)."""
        if not len(batch):
            return
        self._send_payload(encode_col_block(batch), num_rows=len(batch))

    def _send_payload(self, payload: bytes, num_rows: int, retry: bool = False) -> None:
        if self._closed:
            raise TransferError("send on a closed channel")
        if self._governor is not None:
            self._governor.throttle(self._tenant, budget=self._budget)
        frame = _FRAME.pack(len(payload)) + payload
        self._flush_overflow(blocking=False)
        if self._overflow:
            # strict FIFO: once anything is queued, new frames queue too
            self._spill(frame)
        else:
            sent = self._try_send(frame)
            if sent < len(frame):
                self._spill(frame[sent:])
        logical = block_logical_bytes(payload)
        if retry:
            self.retry_bytes += logical
            if self._ledger is not None:
                self._ledger.add("stream.retry", logical)
            return
        self.rows_sent += num_rows
        self.bytes_sent += logical
        if self._ledger is not None:
            self._ledger.add("stream.sent", logical)
            if not self.local:
                self._ledger.add("stream.net", logical)

    def close(self) -> None:
        """Flush any overflow (blocking — the reader is draining), then
        signal EOF by shutting down the write side."""
        if self._closed:
            return
        self._flush_overflow(blocking=True)
        self._closed = True
        try:
            self._send_sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._send_sock.close()

    def release(self) -> None:
        """Free both socket ends at session teardown (no blocking flush:
        a failed session's unread bytes are dropped, not delivered)."""
        self._closed = True
        self._credit_governor(self._governed)
        self._overflow.clear()
        self._pending.clear()
        for sock in (self._send_sock, self._recv_sock):
            try:
                sock.close()
            except OSError:
                pass

    def _try_send(self, data: bytes) -> int:
        try:
            return self._send_sock.send(data)
        except BlockingIOError:
            return 0

    def _spill(self, data: bytes) -> None:
        self._overflow.append(data)
        self.spilled_bytes += len(data)
        if self._ledger is not None:
            self._ledger.add("stream.spilled", len(data))
        if self._governor is not None:
            self._governor.charge(self._tenant, len(data))
            self._governed += len(data)

    def _credit_governor(self, nbytes: int) -> None:
        if self._governor is not None and nbytes > 0:
            self._governor.credit(self._tenant, nbytes)
            self._governed = max(self._governed - nbytes, 0)

    def _flush_overflow(self, blocking: bool) -> None:
        while self._overflow:
            head = self._overflow[0]
            sent = self._try_send(head)
            if sent == len(head):
                self._overflow.popleft()
                self._credit_governor(sent)
                continue
            if sent:
                self._overflow[0] = head[sent:]
                self._credit_governor(sent)
            if not blocking:
                return
            if self._clock.is_virtual:
                # Virtual time: never block the real socket — poll it in
                # clock slices so the reader thread gets scheduled between
                # attempts and the timeout burns virtual, not wall, time.
                self._drain_overflow_virtual()
                return
            # Blocking flush: wait for the kernel buffer to drain, with a
            # timeout so a dead reader surfaces as an error, not a hang.
            self._send_sock.settimeout(self._send_timeout_s)
            try:
                remaining = self._overflow.popleft()
                self._send_sock.sendall(remaining)
                self._credit_governor(len(remaining))
            except socket.timeout:
                raise ChannelTimeoutError(
                    f"channel {self.channel_id} flush timed out after "
                    f"{self._send_timeout_s}s (reader gone?)"
                ) from None
            finally:
                self._send_sock.setblocking(False)

    def _drain_overflow_virtual(self) -> None:
        deadline = self._clock.now() + self._send_timeout_s
        while self._overflow:
            head = self._overflow[0]
            sent = self._try_send(head)
            if sent == len(head):
                self._overflow.popleft()
                self._credit_governor(sent)
                continue
            if sent:
                self._overflow[0] = head[sent:]
                self._credit_governor(sent)
            if self._clock.now() >= deadline:
                raise ChannelTimeoutError(
                    f"channel {self.channel_id} flush timed out after "
                    f"{self._send_timeout_s}s (reader gone?)"
                )
            self._clock.sleep(0.001)

    # ------------------------------------------------------------- ML side

    def receive_block(self, timeout: float | None = None) -> list[tuple] | None:
        """Next RowBlock (a one-row block when the sender used per-row
        frames), or None at end of stream.  Sequenced frames whose number
        was already accepted are §6 replay duplicates: dropped and counted."""
        if self._pending:
            rows = list(self._pending)
            self._pending.clear()
            return rows
        deadline = self._arm_receive(timeout)
        while True:
            header = self._read_exact(_FRAME.size, deadline)
            if header is None:
                return None
            (length,) = _FRAME.unpack(header)
            payload = self._read_exact(length, deadline)
            if payload is None:
                raise TransferError(
                    f"channel {self.channel_id} truncated mid-frame "
                    f"(expected {length} payload bytes)"
                )
            seq, frame = split_seq_frame(payload)
            if seq is not None:
                if seq <= self._last_seq:
                    self.duplicate_blocks += 1
                    self.duplicate_bytes += block_logical_bytes(frame)
                    continue
                self._last_seq = seq
            rows = decode_block(frame)
            self.rows_received += len(rows)
            self.bytes_received += block_logical_bytes(frame)
            return rows

    def receive_frame(self, timeout: float | None = None):
        """Next frame in its native representation: a ColumnBatch for
        columnar frames, a row list otherwise, None at EOF (see
        :meth:`StreamChannel.receive_frame`)."""
        if self._pending:
            rows = list(self._pending)
            self._pending.clear()
            return rows
        deadline = self._arm_receive(timeout)
        while True:
            header = self._read_exact(_FRAME.size, deadline)
            if header is None:
                return None
            (length,) = _FRAME.unpack(header)
            payload = self._read_exact(length, deadline)
            if payload is None:
                raise TransferError(
                    f"channel {self.channel_id} truncated mid-frame "
                    f"(expected {length} payload bytes)"
                )
            seq, frame = split_seq_frame(payload)
            if seq is not None:
                if seq <= self._last_seq:
                    self.duplicate_blocks += 1
                    self.duplicate_bytes += block_logical_bytes(frame)
                    continue
                self._last_seq = seq
            out = (
                decode_col_block(frame)
                if is_columnar_frame(frame)
                else decode_block(frame)
            )
            self.rows_received += len(out)
            self.bytes_received += block_logical_bytes(frame)
            return out

    def receive(self, timeout: float | None = None) -> tuple | None:
        if not self._pending:
            block = self.receive_block(timeout=timeout)
            if block is None:
                return None
            self._pending.extend(block)
        return self._pending.popleft()

    def __iter__(self):
        while True:
            block = self.receive_block()
            if block is None:
                return
            yield from block

    def _arm_receive(self, timeout: float | None) -> float | None:
        """Prepare one receive call: seed path sets the socket timeout and
        returns None; budget (or virtual-clock) path returns the absolute
        clock deadline (min of flat timeout and budget remaining) for
        sliced reads."""
        if self._budget is None and not self._clock.is_virtual:
            if timeout is not None:
                self._recv_sock.settimeout(timeout)
            return None
        base = timeout if timeout is not None else self._receive_timeout_s
        bound = base if self._budget is None else self._budget.clamp(base)
        return None if bound is None else self._clock.now() + bound

    def _recv_slice(self, slice_s: float) -> bytes | None:
        """One bounded receive attempt; None when the slice elapsed idle."""
        if self._clock.is_virtual:
            self._recv_sock.setblocking(False)
            try:
                return self._recv_sock.recv(65536)
            except BlockingIOError:
                self._clock.sleep(max(slice_s, 0.001))
                return None
        self._recv_sock.settimeout(max(slice_s, 0.001))
        try:
            return self._recv_sock.recv(65536)
        except socket.timeout:
            return None

    def _read_exact(self, n: int, deadline: float | None = None) -> bytes | None:
        while len(self._recv_buffer) < n:
            if self._budget is not None or self._clock.is_virtual:
                # Sliced reads (<=100ms) so a cancel or expiry is observed
                # promptly even while the socket is idle.
                if self._budget is not None:
                    self._budget.check(f"channel {self.channel_id} receive")
                slice_s = 0.1
                if deadline is not None:
                    remaining = deadline - self._clock.now()
                    if remaining <= 0:
                        raise ChannelTimeoutError(
                            f"channel {self.channel_id} receive timed out"
                        )
                    slice_s = min(slice_s, remaining)
                chunk = self._recv_slice(slice_s)
                if chunk is None:
                    continue
            else:
                try:
                    chunk = self._recv_sock.recv(65536)
                except socket.timeout:
                    raise ChannelTimeoutError(
                        f"channel {self.channel_id} receive timed out"
                    ) from None
            if not chunk:
                if self._recv_buffer:
                    raise TransferError(
                        f"channel {self.channel_id} closed mid-frame"
                    )
                return None  # clean EOF
            self._recv_buffer += chunk
        data, self._recv_buffer = self._recv_buffer[:n], self._recv_buffer[n:]
        return data


# --------------------------------------------------------------------------
# Channel multiplexing: many sessions, one socket pair per SQL worker.
# --------------------------------------------------------------------------

_MUX_FRAME = struct.Struct(">II")  # (payload length, tag)

#: Reserved tag for in-band control frames.  A control frame's payload is a
#: single big-endian u32 naming the *target* data tag; today the only verb
#: is CANCEL (cooperative cancellation broadcast by ``cancel_session``).
#: ``new_tag`` counts up from 0, so real tags never collide with it.
_CONTROL_TAG = 0xFFFFFFFF
_CONTROL_PAYLOAD = struct.Struct(">I")


class MuxSocketTransport:
    """One shared socket pair carrying many tagged channel streams.

    With concurrent sessions, giving every ``(session, channel)`` pair its
    own socket pair multiplies file descriptors by the session count.  This
    transport keeps *one* connected pair per SQL worker and multiplexes all
    of that worker's channels — across every live session — over it, the way
    a real deployment shares one TCP connection per worker pair.

    Frame layout on the wire: an 8-byte ``(length, tag)`` header, then the
    payload.  A zero-length frame is the tag's EOF.  Integrity rules:

    * **byte-stream integrity** — a partially-written frame's remainder
      (``_wire_remainder``) is always flushed before any other bytes, so
      frames never interleave mid-payload;
    * **per-tag FIFO** — each tag's frames queue and flush in order;
    * **head-of-line isolation** — tags with queued overflow are pumped
      round-robin, so one session's backlog cannot monopolize the wire.

    Sending is serialized by a lock (senders are per-SQL-worker threads);
    receiving is a cooperative demux: whichever reader wants a frame pulls
    the socket (under a try-lock) and sorts frames into per-tag queues,
    waking the readers of every tag it delivered to.
    """

    def __init__(
        self,
        buffer_bytes: int = 4096,
        receive_timeout_s: float = 30.0,
        send_timeout_s: float = 30.0,
        clock=None,  # repro.sim.clock.Clock | None — flush/receive timing
    ):
        self._clock = clock or WALL
        send_sock, recv_sock = socket.socketpair()
        send_sock.setblocking(False)
        try:
            send_sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes)
            recv_sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)
        except OSError:
            pass  # kernels clamp/deny; the overflow path still engages
        self._send_sock = send_sock
        self._recv_sock = recv_sock
        self._send_timeout_s = send_timeout_s
        self.receive_timeout_s = receive_timeout_s
        self._tag_ids = itertools.count()
        self._send_lock = threading.Lock()
        self._overflow: dict[int, deque[bytes]] = {}
        #: control frames (CANCEL) jump the round-robin: they are pumped
        #: right after any blocked wire remainder, before data backlogs.
        self._control: deque[bytes] = deque()
        self._wire_remainder = b""
        self._wire_tag: int | None = None
        self._tag_governor: dict[int, tuple] = {}
        self._closed_tags: set[int] = set()
        self._transport_closed = False
        #: Notified whenever the wire may have drained (the receive pump
        #: freed kernel buffer space) or a flush should give up (tag
        #: released/cancelled, transport closed, session cancelled):
        #: ``close_tag`` waits here instead of busy-polling.
        self._drain_cond = threading.Condition()
        # receive side
        self._socket_lock = threading.Lock()
        self._recv_cond = threading.Condition()
        self._frames: dict[int, deque[bytes]] = {}
        self._eof: set[int] = set()
        self._released: set[int] = set()
        self._cancelled: set[int] = set()  # tags with a received CANCEL
        self._stream_eof = False
        self._rbuf = b""

    # ----------------------------------------------------------- tag admin

    def new_tag(self, governor=None, tenant: str = "default") -> int:
        """Allocate a fresh stream tag (optionally governed for the tenant)."""
        tag = next(self._tag_ids)
        with self._send_lock:
            self._overflow[tag] = deque()
            if governor is not None:
                self._tag_governor[tag] = (governor, tenant)
        return tag

    # ------------------------------------------------------------ send side

    def send(self, tag: int, payload: bytes) -> int:
        """Write one frame for ``tag``; returns bytes that had to queue
        (the caller's spill accounting)."""
        frame = _MUX_FRAME.pack(len(payload), tag) + payload
        with self._send_lock:
            if self._transport_closed or tag in self._closed_tags:
                raise TransferError(f"send on closed mux tag {tag}")
            self._pump_locked()
            queue = self._overflow[tag]
            if self._wire_remainder or queue or any(
                q for q in self._overflow.values()
            ):
                # FIFO per tag, and no overtaking a blocked wire: queue it.
                queue.append(frame)
                self._charge(tag, len(frame))
                return len(frame)
            sent = self._try_send(frame)
            if sent < len(frame):
                self._wire_remainder = frame[sent:]
                self._wire_tag = tag
                self._charge(tag, len(frame) - sent)
                return len(frame) - sent
            return 0

    def _charge(self, tag: int, nbytes: int) -> None:
        governed = self._tag_governor.get(tag)
        if governed is not None and nbytes > 0:
            governed[0].charge(governed[1], nbytes)

    def _credit(self, tag: int, nbytes: int) -> None:
        governed = self._tag_governor.get(tag)
        if governed is not None and nbytes > 0:
            governed[0].credit(governed[1], nbytes)

    def _try_send(self, data: bytes) -> int:
        try:
            return self._send_sock.send(data)
        except BlockingIOError:
            return 0

    def _pump_locked(self) -> None:
        """Flush queued frames without blocking.  Caller holds the send lock."""
        while True:
            if self._wire_remainder:
                sent = self._try_send(self._wire_remainder)
                self._credit(self._wire_tag, sent)
                if sent < len(self._wire_remainder):
                    self._wire_remainder = self._wire_remainder[sent:]
                    return
                self._wire_remainder = b""
                self._wire_tag = None
            while self._control:
                # Control frames (CANCEL) outrank data backlogs: a cancel
                # must not queue behind the very stream it is cancelling.
                frame = self._control[0]
                sent = self._try_send(frame)
                if sent == len(frame):
                    self._control.popleft()
                    continue
                if sent:
                    self._control.popleft()
                    self._wire_remainder = frame[sent:]
                    self._wire_tag = _CONTROL_TAG
                return  # kernel buffer full
            backlogged = [t for t, q in self._overflow.items() if q]
            if not backlogged:
                return
            progressed = False
            for tag in backlogged:  # round-robin: one frame per tag per pass
                queue = self._overflow[tag]
                if not queue:
                    continue
                frame = queue[0]
                sent = self._try_send(frame)
                self._credit(tag, sent)
                if sent == len(frame):
                    queue.popleft()
                    progressed = True
                    continue
                if sent:
                    queue.popleft()
                    self._wire_remainder = frame[sent:]
                    self._wire_tag = tag
                return  # kernel buffer full
            if not progressed:
                return

    def cancel_tag(self, tag: int) -> None:
        """Broadcast a CANCEL control frame for ``tag`` (cooperative
        cancellation).  The receive side marks the tag cancelled as soon as
        the frame demuxes: blocked and future ``recv`` calls on it raise
        :class:`SessionCancelled` instead of draining to EOF.  Never blocks —
        the frame rides the control queue, which outranks data backlogs."""
        frame = _MUX_FRAME.pack(
            _CONTROL_PAYLOAD.size, _CONTROL_TAG
        ) + _CONTROL_PAYLOAD.pack(tag)
        with self._send_lock:
            if self._transport_closed:
                return
            self._control.append(frame)
            self._pump_locked()
        # Local fast path: the receive pump may be idle (no reader pulling
        # the socket right now); mark the tag directly so waiters wake even
        # before the wire frame demuxes.
        with self._recv_cond:
            self._cancelled.add(tag)
            self._recv_cond.notify_all()
        self._notify_drain()

    def close_tag(self, tag: int, budget=None) -> None:
        """Flush the tag's queue and write its EOF frame (bounded wait).

        The EOF travels through the same overflow queue as data frames, and
        the wait loop *releases the send lock between pump passes*: a flush
        stalled on a slow reader must never hold ``_send_lock`` — other
        sessions keep allocating tags and sending through it, and the
        coordinator may need it (under its own lock) to plan a new session's
        channels.  Holding it here deadlocks the whole worker's mux.

        With a cancelled/expired ``budget`` the wait is skipped entirely:
        the session's reader is gone by definition, so blocking on it would
        wedge teardown — ``release_tag`` reclaims the queue instead.

        The between-pump wait parks on ``_drain_cond`` (notified by the
        receive pump freeing kernel buffer space, by tag release/cancel,
        and — via ``budget.on_cancel`` — by session cancellation), so a
        stalled flush costs no CPU and a cancel wakes it immediately.
        """
        eof = _MUX_FRAME.pack(0, tag)
        with self._send_lock:
            if self._transport_closed or tag in self._closed_tags:
                return
            self._closed_tags.add(tag)
            self._overflow.setdefault(tag, deque()).append(eof)
            self._charge(tag, len(eof))
        deadline = self._clock.now() + self._send_timeout_s
        dispose = (
            budget.on_cancel(self._notify_drain) if budget is not None else None
        )
        try:
            while True:
                with self._send_lock:
                    if self._transport_closed:
                        return
                    self._pump_locked()
                    queue = self._overflow.get(tag)
                    if not queue and self._wire_tag != tag:
                        return
                if budget is not None and (budget.cancelled or budget.expired):
                    return  # reader cancelled; don't wedge teardown on flush
                remaining = deadline - self._clock.now()
                if remaining <= 0:
                    raise ChannelTimeoutError(
                        f"mux tag {tag} flush timed out after "
                        f"{self._send_timeout_s}s (reader gone?)"
                    )
                with self._drain_cond:
                    self._clock.wait_on(self._drain_cond, min(remaining, 0.05))
        finally:
            if dispose is not None:
                dispose()

    def _notify_drain(self) -> None:
        with self._drain_cond:
            self._drain_cond.notify_all()

    def release_tag(self, tag: int) -> None:
        """Drop the tag's state on both sides (session teardown: unread
        frames are discarded, other tags are untouched)."""
        with self._send_lock:
            queue = self._overflow.pop(tag, None)
            if queue:
                self._credit(tag, sum(len(f) for f in queue))
            self._closed_tags.add(tag)
            self._tag_governor.pop(tag, None)
        with self._recv_cond:
            self._released.add(tag)
            self._frames.pop(tag, None)
            self._eof.add(tag)
            self._recv_cond.notify_all()
        self._notify_drain()

    def close(self) -> None:
        """Tear down the shared pair (coordinator shutdown)."""
        with self._send_lock:
            self._transport_closed = True
            for sock in (self._send_sock, self._recv_sock):
                try:
                    sock.close()
                except OSError:
                    pass
        self._notify_drain()

    # --------------------------------------------------------- receive side

    def recv(self, tag: int, timeout: float | None = None) -> bytes | None:
        """Next payload for ``tag`` (None at the tag's EOF).

        Cooperative demux: if another reader is already pulling the socket,
        wait on the condition it notifies; otherwise pull it ourselves and
        deliver frames to every tag's queue.
        """
        effective = self.receive_timeout_s if timeout is None else timeout
        deadline = self._clock.now() + effective
        while True:
            with self._recv_cond:
                if tag in self._cancelled:
                    raise SessionCancelled(
                        f"mux tag {tag} cancelled by coordinator CANCEL frame"
                    )
                queue = self._frames.get(tag)
                if queue:
                    return queue.popleft()
                if tag in self._eof or self._stream_eof:
                    return None
            remaining = deadline - self._clock.now()
            if remaining <= 0:
                raise ChannelTimeoutError(
                    f"mux tag {tag} receive timed out after {effective}s"
                )
            slice_s = min(0.05, remaining)
            if self._socket_lock.acquire(blocking=False):
                try:
                    self._pump_receive(slice_s)
                finally:
                    self._socket_lock.release()
            else:
                with self._recv_cond:
                    if (
                        not self._frames.get(tag)
                        and tag not in self._eof
                        and not self._stream_eof
                    ):
                        self._clock.wait_on(self._recv_cond, slice_s)

    def _pump_receive(self, max_wait: float) -> None:
        try:
            if self._clock.is_virtual:
                # Virtual time: a real blocking recv would stall the whole
                # simulation; poll non-blocking and yield a clock tick when
                # the wire is idle.
                self._recv_sock.setblocking(False)
                try:
                    chunk = self._recv_sock.recv(65536)
                except BlockingIOError:
                    self._clock.sleep(max_wait)
                    return
            else:
                self._recv_sock.settimeout(max_wait)
                chunk = self._recv_sock.recv(65536)
        except socket.timeout:
            return
        except OSError:
            chunk = b""
        with self._recv_cond:
            if not chunk:
                self._stream_eof = True
                self._recv_cond.notify_all()
                return
            self._rbuf += chunk
            while len(self._rbuf) >= _MUX_FRAME.size:
                length, frame_tag = _MUX_FRAME.unpack_from(self._rbuf)
                if len(self._rbuf) < _MUX_FRAME.size + length:
                    break
                payload = self._rbuf[_MUX_FRAME.size : _MUX_FRAME.size + length]
                self._rbuf = self._rbuf[_MUX_FRAME.size + length :]
                if frame_tag == _CONTROL_TAG:
                    # CANCEL verb: payload names the target data tag.
                    if length == _CONTROL_PAYLOAD.size:
                        (target,) = _CONTROL_PAYLOAD.unpack(payload)
                        self._cancelled.add(target)
                elif length == 0:
                    self._eof.add(frame_tag)
                elif frame_tag not in self._released:
                    self._frames.setdefault(frame_tag, deque()).append(payload)
            self._recv_cond.notify_all()
        # Bytes left the kernel buffer: blocked close_tag flushes can retry.
        self._notify_drain()


class MuxSocketChannel:
    """A :class:`StreamChannel`-interface channel riding one tag of a shared
    :class:`MuxSocketTransport`.

    Identical accounting to :class:`SocketStreamChannel` — logical bytes to
    ``stream.sent``/``stream.net``, queued bytes to ``stream.spilled``,
    replay traffic to ``stream.retry`` with receiver-side sequence dedup —
    but N concurrent sessions cost one socket pair per SQL worker instead
    of one per channel."""

    def __init__(
        self,
        channel_id: ChannelId,
        transport: MuxSocketTransport,
        ledger: CostLedger | None = None,
        local: bool = False,
        governor=None,
        tenant: str = "default",
        receive_timeout_s: float | None = None,
        budget=None,
        clock=None,  # repro.sim.clock.Clock | None — receive-slice timing
    ):
        self.channel_id = channel_id
        self.local = local
        self._ledger = ledger
        self._clock = clock or WALL
        self._transport = transport
        self._governor = governor
        self._tenant = tenant
        self._receive_timeout_s = receive_timeout_s
        # Per-session Budget: receives derive from its remaining time (in
        # <=100ms slices so cancel/expiry surface promptly) and teardown
        # never blocks flushing toward a cancelled reader.
        self._budget = budget
        self._tag = transport.new_tag(governor=governor, tenant=tenant)
        self._pending: deque[tuple] = deque()
        self._closed = False
        self.rows_sent = 0
        self.bytes_sent = 0
        self.rows_received = 0
        self.bytes_received = 0
        self.spilled_bytes = 0
        self.retry_bytes = 0
        self.duplicate_blocks = 0
        self.duplicate_bytes = 0
        self._last_seq = -1

    # ------------------------------------------------------------ SQL side

    def send_row(self, row: tuple) -> None:
        self._send_payload(encode_row(row), num_rows=1)

    def send_many(self, rows: Sequence[tuple]) -> None:
        if not rows:
            return
        self._send_payload(encode_block(rows), num_rows=len(rows))

    def send_block(self, rows: Sequence[tuple], seq: int, retry: bool = False) -> None:
        if not rows:
            return
        self._send_payload(encode_seq_block(rows, seq), num_rows=len(rows), retry=retry)

    def send_col_batch(self, batch) -> None:
        if not len(batch):
            return
        self._send_payload(encode_col_block(batch), num_rows=len(batch))

    def _send_payload(self, payload: bytes, num_rows: int, retry: bool = False) -> None:
        if self._closed:
            raise TransferError("send on a closed channel")
        if self._governor is not None:
            self._governor.throttle(self._tenant, budget=self._budget)
        queued = self._transport.send(self._tag, payload)
        if queued:
            self.spilled_bytes += queued
            if self._ledger is not None:
                self._ledger.add("stream.spilled", queued)
        logical = block_logical_bytes(payload)
        if retry:
            self.retry_bytes += logical
            if self._ledger is not None:
                self._ledger.add("stream.retry", logical)
            return
        self.rows_sent += num_rows
        self.bytes_sent += logical
        if self._ledger is not None:
            self._ledger.add("stream.sent", logical)
            if not self.local:
                self._ledger.add("stream.net", logical)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._transport.close_tag(self._tag, budget=self._budget)

    def cancel(self) -> None:
        """Broadcast the CANCEL control frame for this channel's tag
        (``cancel_session`` fans this out over every mux channel)."""
        self._transport.cancel_tag(self._tag)

    def release(self) -> None:
        self._closed = True
        self._pending.clear()
        self._transport.release_tag(self._tag)

    # ------------------------------------------------------------- ML side

    def _recv_payload(self, effective: float | None) -> bytes | None:
        if self._budget is None:
            return self._transport.recv(self._tag, timeout=effective)
        if effective is None:
            effective = self._transport.receive_timeout_s
        bound = self._budget.clamp(effective)
        deadline = None if bound is None else self._clock.now() + bound
        while True:
            self._budget.check(f"mux tag {self._tag} receive")
            slice_s = 0.1
            if deadline is not None:
                remaining = deadline - self._clock.now()
                if remaining <= 0:
                    raise ChannelTimeoutError(
                        f"mux tag {self._tag} receive timed out after {bound}s"
                    )
                slice_s = min(slice_s, remaining)
            try:
                return self._transport.recv(self._tag, timeout=slice_s)
            except ChannelTimeoutError:
                continue  # slice elapsed; re-check budget and flat deadline

    def _next_frame(self, timeout: float | None):
        effective = timeout if timeout is not None else self._receive_timeout_s
        while True:
            payload = self._recv_payload(effective)
            if payload is None:
                return None
            seq, frame = split_seq_frame(payload)
            if seq is not None:
                if seq <= self._last_seq:
                    self.duplicate_blocks += 1
                    self.duplicate_bytes += block_logical_bytes(frame)
                    continue
                self._last_seq = seq
            return frame

    def receive_block(self, timeout: float | None = None) -> list[tuple] | None:
        if self._pending:
            rows = list(self._pending)
            self._pending.clear()
            return rows
        frame = self._next_frame(timeout)
        if frame is None:
            return None
        rows = decode_block(frame)
        self.rows_received += len(rows)
        self.bytes_received += block_logical_bytes(frame)
        return rows

    def receive_frame(self, timeout: float | None = None):
        if self._pending:
            rows = list(self._pending)
            self._pending.clear()
            return rows
        frame = self._next_frame(timeout)
        if frame is None:
            return None
        out = (
            decode_col_block(frame)
            if is_columnar_frame(frame)
            else decode_block(frame)
        )
        self.rows_received += len(out)
        self.bytes_received += block_logical_bytes(frame)
        return out

    def receive(self, timeout: float | None = None) -> tuple | None:
        if not self._pending:
            block = self.receive_block(timeout=timeout)
            if block is None:
                return None
            self._pending.extend(block)
        return self._pending.popleft()

    def __iter__(self):
        while True:
            block = self.receive_block()
            if block is None:
                return
            yield from block
