"""Glue: let the coordinator launch jobs on an :class:`MLSystem` (step 2)."""

from repro.iofmt.inputformat import JobConf
from repro.ml.system import MLJobResult, MLSystem
from repro.transfer.coordinator import Coordinator, StreamSession
from repro.transfer.sqlstream import SQLStreamInputFormat


def connect(coordinator: Coordinator, ml_system: MLSystem) -> None:
    """Wire a coordinator to an ML system.

    After this, a fully-registered session triggers
    ``ml_system.run_job(command, args, SQLStreamInputFormat(), conf)`` on a
    separate thread — the paper's step 2 — with the session's configuration
    properties carried into the job conf.

    ``coordinator`` may be a plain :class:`Coordinator` or a
    :class:`~repro.transfer.ha.FailoverCoordinator`: under HA the launcher
    installs on *every* replica (whichever replica leads at registration
    time launches the job), while the job conf always carries the failover
    proxy — so the ML-side handshakes (split planning, reader claims)
    survive a leader change mid-job.
    """

    def launch(session: StreamSession) -> MLJobResult:
        props = dict(session.conf_props)
        props["stream.session"] = session.session_id
        # The session budget rides the conf as an object so every ML-side
        # blocking wait (slot acquisition, ingest, training iterations)
        # derives from the same end-to-end clock.
        conf = JobConf(props, coordinator=coordinator, budget=session.budget)
        requested = props.get("stream.num_splits")
        return ml_system.run_job(
            command=session.command,
            args=session.args,
            input_format=SQLStreamInputFormat(),
            conf=conf,
            num_workers=int(requested) if requested else None,
        )

    replicas = getattr(coordinator, "replicas", None)
    for target in replicas if replicas else [coordinator]:
        target.launcher = launch
