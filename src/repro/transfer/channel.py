"""One SQL-worker -> ML-worker stream channel."""

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

from repro.cluster.cost import CostLedger
from repro.transfer.buffers import (
    SpillableBuffer,
    block_logical_bytes,
    decode_block,
    decode_col_block,
    encode_block,
    encode_col_block,
    encode_row,
    encode_seq_block,
    is_columnar_frame,
    split_seq_frame,
)


@dataclass(frozen=True)
class ChannelId:
    """Identity of a channel inside a session: (SQL worker, subchannel)."""

    sql_worker_id: int
    index: int

    def __str__(self) -> str:
        return f"sql{self.sql_worker_id}->ml{self.index}"


class StreamChannel:
    """A unidirectional row pipe with a bounded, spillable buffer.

    In the real system this is a TCP socket with a send buffer on the SQL
    side and a receive buffer on the ML side; in-process we model the pair
    as one :class:`SpillableBuffer` whose capacity plays both roles (the
    paper sets both to the same 4 KB anyway).  ``local`` records whether
    coordinator matchmaking managed to colocate the endpoints — remote
    channels cost network bytes in the ledger, local ones do not.
    """

    def __init__(
        self,
        channel_id: ChannelId,
        buffer_bytes: int = 4096,
        ledger: CostLedger | None = None,
        spill_path: str | None = None,
        local: bool = False,
        governor=None,
        tenant: str = "default",
        budget=None,
        clock=None,  # repro.sim.clock.Clock | None — buffer-wait timing
        injector=None,  # FaultInjector | None — dfs.enospc at the spill site
    ):
        self.channel_id = channel_id
        self.local = local
        self._ledger = ledger
        # Backpressure isolation (multi-tenant deployments only): senders
        # consult the tenant's SpillGovernor *before* enqueueing, so a tenant
        # whose spill is over budget pauses its own producers while every
        # other tenant's channels keep flowing.  governor=None (the default)
        # is the seed path — zero extra work per send.
        self._governor = governor
        self._tenant = tenant
        # Per-session Budget: receive waits derive from its remaining time
        # (via the buffer) and governor pauses observe its cancel flag.
        self._budget = budget
        self._buffer = SpillableBuffer(
            capacity_bytes=buffer_bytes,
            spill_path=spill_path,
            ledger=ledger,
            governor=governor,
            tenant=tenant,
            budget=budget,
            clock=clock,
            injector=injector,
        )
        self.rows_sent = 0
        self.bytes_sent = 0
        self.rows_received = 0
        self.bytes_received = 0
        #: §6 replay traffic: bytes re-sent by a restarted SQL worker
        #: (charged to ``stream.retry``, never to ``stream.sent``).
        self.retry_bytes = 0
        #: §6 dedup on the ML side: replayed blocks dropped by sequence number
        self.duplicate_blocks = 0
        self.duplicate_bytes = 0
        self._last_seq = -1  # highest accepted block sequence number
        self._pending: deque[tuple] = deque()  # rows decoded but not yet read

    # ------------------------------------------------------------ SQL side

    def send_row(self, row: tuple) -> None:
        """Serialize and enqueue one row (the seed's per-row wire format)."""
        payload = encode_row(row)
        if self._governor is not None:
            self._governor.throttle(self._tenant, budget=self._budget)
        self._buffer.put(payload)
        self.rows_sent += 1
        self._account_sent(len(payload))

    def send_many(self, rows: Sequence[tuple]) -> None:
        """Serialize and enqueue a RowBlock: one buffer item, one lock
        acquisition, one ledger entry for the whole batch.  Accounted at
        the block's logical (per-row framing) size, keeping byte totals
        identical to the seed path."""
        if not rows:
            return
        payload = encode_block(rows)
        if self._governor is not None:
            self._governor.throttle(self._tenant, budget=self._budget)
        self._buffer.put(payload)
        self.rows_sent += len(rows)
        self._account_sent(block_logical_bytes(payload))

    def send_col_batch(self, batch) -> None:
        """Serialize and enqueue a :class:`ColumnBatch` as one columnar
        (``C``) frame.  Accounted at the batch's logical (seed per-row
        formula) size, so ledgers stay on the row-path scale while the wire
        carries pickled numpy arrays instead of per-row pickles."""
        if not len(batch):
            return
        payload = encode_col_block(batch)
        if self._governor is not None:
            self._governor.throttle(self._tenant, budget=self._budget)
        self._buffer.put(payload)
        self.rows_sent += len(batch)
        self._account_sent(block_logical_bytes(payload))

    def send_block(self, rows: Sequence[tuple], seq: int, retry: bool = False) -> None:
        """Enqueue a *sequenced* RowBlock (the §6 resilient send path).

        ``seq`` is this channel's per-epoch block number; the receiver drops
        any frame whose number it already accepted, so a restarted worker can
        replay its partition from block 0 without double delivery.  ``retry``
        marks a restart epoch's traffic: its bytes land in the separate
        ``stream.retry`` ledger counter, keeping the fault-free ``stream.sent``
        and ``stream.net`` totals byte-for-byte invariant.
        """
        if not rows:
            return
        payload = encode_seq_block(rows, seq)
        if self._governor is not None:
            self._governor.throttle(self._tenant, budget=self._budget)
        self._buffer.put(payload)
        logical = block_logical_bytes(payload)
        if retry:
            self.retry_bytes += logical
            if self._ledger is not None:
                self._ledger.add("stream.retry", logical)
        else:
            self.rows_sent += len(rows)
            self._account_sent(logical)

    def _account_sent(self, nbytes: int) -> None:
        self.bytes_sent += nbytes
        if self._ledger is not None:
            self._ledger.add("stream.sent", nbytes)
            if not self.local:
                self._ledger.add("stream.net", nbytes)

    def close(self) -> None:
        """End of stream from the sender."""
        self._buffer.close()

    def abort(self, reason: str = "producer failed") -> None:
        """Fatal end of stream: the producer died mid-send, so receivers
        must get a typed :class:`ChannelAbortedError`, never the clean EOF
        that would pass off the delivered prefix as a complete dataset."""
        self._buffer.abort(reason)

    def release(self) -> None:
        """Free transfer resources at session teardown: pending rows are
        dropped and any leftover spill file is deleted (``close_session``
        calls this so finished *and* failed sessions leave no spill files)."""
        self._buffer.discard()
        self._pending.clear()

    # ------------------------------------------------------------- ML side

    def receive_block(self, timeout: float | None = 30.0) -> list[tuple] | None:
        """Next RowBlock (possibly a one-row block from a per-row sender),
        or None at end of stream.

        Sequenced frames are deduplicated here: a frame whose sequence
        number was already accepted is a §6 replay duplicate — dropped and
        counted, never delivered, so the ML side sees each row exactly once.
        """
        if self._pending:
            rows = list(self._pending)
            self._pending.clear()
            return rows
        while True:
            payload = self._buffer.get(timeout=timeout)
            if payload is None:
                return None
            seq, frame = split_seq_frame(payload)
            if seq is not None:
                if seq <= self._last_seq:
                    self.duplicate_blocks += 1
                    self.duplicate_bytes += block_logical_bytes(frame)
                    continue
                self._last_seq = seq
            rows = decode_block(frame)
            self.rows_received += len(rows)
            self.bytes_received += block_logical_bytes(frame)
            return rows

    def receive_frame(self, timeout: float | None = 30.0):
        """Next frame in its native representation: a
        :class:`~repro.columnar.batch.ColumnBatch` for columnar frames, a
        row list otherwise, or None at end of stream.  Same dedup and
        counting as :meth:`receive_block` — columnar-aware receivers use
        this to skip the rows pivot entirely."""
        if self._pending:
            rows = list(self._pending)
            self._pending.clear()
            return rows
        while True:
            payload = self._buffer.get(timeout=timeout)
            if payload is None:
                return None
            seq, frame = split_seq_frame(payload)
            if seq is not None:
                if seq <= self._last_seq:
                    self.duplicate_blocks += 1
                    self.duplicate_bytes += block_logical_bytes(frame)
                    continue
                self._last_seq = seq
            out = (
                decode_col_block(frame)
                if is_columnar_frame(frame)
                else decode_block(frame)
            )
            self.rows_received += len(out)
            self.bytes_received += block_logical_bytes(frame)
            return out

    def receive(self, timeout: float | None = 30.0) -> tuple | None:
        """Next row, or None at end of stream."""
        if not self._pending:
            block = self.receive_block(timeout=timeout)
            if block is None:
                return None
            self._pending.extend(block)
        return self._pending.popleft()

    def __iter__(self):
        while True:
            block = self.receive_block()
            if block is None:
                return
            yield from block

    @property
    def spilled_bytes(self) -> int:
        """Bytes that overflowed to the spill region (backpressure events)."""
        return self._buffer.spilled_bytes
