"""One SQL-worker -> ML-worker stream channel."""

from dataclasses import dataclass

from repro.cluster.cost import CostLedger
from repro.transfer.buffers import SpillableBuffer, decode_row, encode_row


@dataclass(frozen=True)
class ChannelId:
    """Identity of a channel inside a session: (SQL worker, subchannel)."""

    sql_worker_id: int
    index: int

    def __str__(self) -> str:
        return f"sql{self.sql_worker_id}->ml{self.index}"


class StreamChannel:
    """A unidirectional row pipe with a bounded, spillable buffer.

    In the real system this is a TCP socket with a send buffer on the SQL
    side and a receive buffer on the ML side; in-process we model the pair
    as one :class:`SpillableBuffer` whose capacity plays both roles (the
    paper sets both to the same 4 KB anyway).  ``local`` records whether
    coordinator matchmaking managed to colocate the endpoints — remote
    channels cost network bytes in the ledger, local ones do not.
    """

    def __init__(
        self,
        channel_id: ChannelId,
        buffer_bytes: int = 4096,
        ledger: CostLedger | None = None,
        spill_path: str | None = None,
        local: bool = False,
    ):
        self.channel_id = channel_id
        self.local = local
        self._ledger = ledger
        self._buffer = SpillableBuffer(
            capacity_bytes=buffer_bytes, spill_path=spill_path, ledger=ledger
        )
        self.rows_sent = 0
        self.bytes_sent = 0
        self.rows_received = 0
        self.bytes_received = 0

    # ------------------------------------------------------------ SQL side

    def send_row(self, row: tuple) -> None:
        """Serialize and enqueue one row."""
        payload = encode_row(row)
        self._buffer.put(payload)
        self.rows_sent += 1
        self.bytes_sent += len(payload)
        if self._ledger is not None:
            self._ledger.add("stream.sent", len(payload))
            if not self.local:
                self._ledger.add("stream.net", len(payload))

    def close(self) -> None:
        """End of stream from the sender."""
        self._buffer.close()

    # ------------------------------------------------------------- ML side

    def receive(self, timeout: float | None = 30.0) -> tuple | None:
        """Next row, or None at end of stream."""
        payload = self._buffer.get(timeout=timeout)
        if payload is None:
            return None
        self.rows_received += 1
        self.bytes_received += len(payload)
        return decode_row(payload)

    def __iter__(self):
        while True:
            row = self.receive()
            if row is None:
                return
            yield row

    @property
    def spilled_bytes(self) -> int:
        """Bytes that overflowed to the spill region (backpressure events)."""
        return self._buffer.spilled_bytes
