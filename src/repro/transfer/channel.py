"""One SQL-worker -> ML-worker stream channel."""

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

from repro.cluster.cost import CostLedger
from repro.transfer.buffers import (
    SpillableBuffer,
    block_logical_bytes,
    decode_block,
    encode_block,
    encode_row,
)


@dataclass(frozen=True)
class ChannelId:
    """Identity of a channel inside a session: (SQL worker, subchannel)."""

    sql_worker_id: int
    index: int

    def __str__(self) -> str:
        return f"sql{self.sql_worker_id}->ml{self.index}"


class StreamChannel:
    """A unidirectional row pipe with a bounded, spillable buffer.

    In the real system this is a TCP socket with a send buffer on the SQL
    side and a receive buffer on the ML side; in-process we model the pair
    as one :class:`SpillableBuffer` whose capacity plays both roles (the
    paper sets both to the same 4 KB anyway).  ``local`` records whether
    coordinator matchmaking managed to colocate the endpoints — remote
    channels cost network bytes in the ledger, local ones do not.
    """

    def __init__(
        self,
        channel_id: ChannelId,
        buffer_bytes: int = 4096,
        ledger: CostLedger | None = None,
        spill_path: str | None = None,
        local: bool = False,
    ):
        self.channel_id = channel_id
        self.local = local
        self._ledger = ledger
        self._buffer = SpillableBuffer(
            capacity_bytes=buffer_bytes, spill_path=spill_path, ledger=ledger
        )
        self.rows_sent = 0
        self.bytes_sent = 0
        self.rows_received = 0
        self.bytes_received = 0
        self._pending: deque[tuple] = deque()  # rows decoded but not yet read

    # ------------------------------------------------------------ SQL side

    def send_row(self, row: tuple) -> None:
        """Serialize and enqueue one row (the seed's per-row wire format)."""
        payload = encode_row(row)
        self._buffer.put(payload)
        self.rows_sent += 1
        self._account_sent(len(payload))

    def send_many(self, rows: Sequence[tuple]) -> None:
        """Serialize and enqueue a RowBlock: one buffer item, one lock
        acquisition, one ledger entry for the whole batch.  Accounted at
        the block's logical (per-row framing) size, keeping byte totals
        identical to the seed path."""
        if not rows:
            return
        payload = encode_block(rows)
        self._buffer.put(payload)
        self.rows_sent += len(rows)
        self._account_sent(block_logical_bytes(payload))

    def _account_sent(self, nbytes: int) -> None:
        self.bytes_sent += nbytes
        if self._ledger is not None:
            self._ledger.add("stream.sent", nbytes)
            if not self.local:
                self._ledger.add("stream.net", nbytes)

    def close(self) -> None:
        """End of stream from the sender."""
        self._buffer.close()

    # ------------------------------------------------------------- ML side

    def receive_block(self, timeout: float | None = 30.0) -> list[tuple] | None:
        """Next RowBlock (possibly a one-row block from a per-row sender),
        or None at end of stream."""
        if self._pending:
            rows = list(self._pending)
            self._pending.clear()
            return rows
        payload = self._buffer.get(timeout=timeout)
        if payload is None:
            return None
        rows = decode_block(payload)
        self.rows_received += len(rows)
        self.bytes_received += block_logical_bytes(payload)
        return rows

    def receive(self, timeout: float | None = 30.0) -> tuple | None:
        """Next row, or None at end of stream."""
        if not self._pending:
            block = self.receive_block(timeout=timeout)
            if block is None:
                return None
            self._pending.extend(block)
        return self._pending.popleft()

    def __iter__(self):
        while True:
            block = self.receive_block()
            if block is None:
                return
            yield from block

    @property
    def spilled_bytes(self) -> int:
        """Bytes that overflowed to the spill region (backpressure events)."""
        return self._buffer.spilled_bytes
