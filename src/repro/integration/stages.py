"""Stage timing records and reporting for pipeline runs."""

from dataclasses import dataclass, field

from repro.common.units import format_bytes, format_duration


@dataclass(frozen=True)
class StageTiming:
    """One pipeline stage: measured wall time plus simulated paper-scale time.

    ``counted`` mirrors the paper's methodology: the ML training time is
    reported but excluded from the whole-workflow comparison ("We do not
    report the runtime of the ML algorithm").
    """

    name: str
    sim_seconds: float
    wall_seconds: float
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    counted: bool = True


@dataclass
class PipelineResult:
    """Everything one end-to-end run produced."""

    approach: str
    stages: list[StageTiming] = field(default_factory=list)
    ml_result: object = None
    rewrite_kind: str | None = None
    #: set by the broker transfer path: the topic the data went through
    broker_topic: str | None = None
    #: streaming runs with retry enabled record how many attempts ran (§6)
    attempts: int = 1
    #: §6 graceful degradation: the approach that failed before this run
    #: fell back to the materialize-to-DFS path (None = no degradation)
    degraded_from: str | None = None

    @property
    def total_sim_seconds(self) -> float:
        """Paper-scale seconds of the counted stages."""
        return sum(s.sim_seconds for s in self.stages if s.counted)

    @property
    def total_wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.stages if s.counted)

    def stage(self, name: str) -> StageTiming:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage {name!r}; have {[s.name for s in self.stages]}")

    def breakdown(self) -> str:
        """Human-readable stage table (simulated paper-scale seconds)."""
        lines = [f"{self.approach} — total {format_duration(self.total_sim_seconds)} (simulated)"]
        for s in self.stages:
            marker = "" if s.counted else "  [excluded from total]"
            lines.append(
                f"  {s.name:<22} {s.sim_seconds:8.1f} s   "
                f"in={format_bytes(s.bytes_in):>10}  out={format_bytes(s.bytes_out):>10}"
                f"{marker}"
            )
        return "\n".join(lines)
