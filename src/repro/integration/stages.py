"""Stage timing, dataset lineage, and reporting for pipeline runs."""

from dataclasses import dataclass, field

from repro.common.units import format_bytes, format_duration


@dataclass(frozen=True)
class DatasetLineage:
    """How one ML job's training input was produced — enough to rebuild it.

    §6's escalation ladder needs to re-create the streamed dataset without
    re-running the whole pipeline, so every streaming run records the
    rewritten queries, the transformation spec, and the cache keys that led
    to the data the ML job trained on.  ``inner_sql`` re-executed against the
    engine (with ``map_handle`` still registered) reproduces the exact rows;
    ``cache_state`` says which §5 tier was warm at plan time (``"transformed"``,
    ``"recode_map"``, or None).
    """

    approach: str
    user_sql: str
    rewrite_kind: str
    inner_sql: str
    pass1_sql: str | None
    map_handle: str
    cached_view: str | None
    spec: object  # TransformSpec
    command: str
    args: dict
    job_id: str
    cache_state: str | None = None


@dataclass(frozen=True)
class StageTiming:
    """One pipeline stage: measured wall time plus simulated paper-scale time.

    ``counted`` mirrors the paper's methodology: the ML training time is
    reported but excluded from the whole-workflow comparison ("We do not
    report the runtime of the ML algorithm").
    """

    name: str
    sim_seconds: float
    wall_seconds: float
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    counted: bool = True


@dataclass
class PipelineResult:
    """Everything one end-to-end run produced."""

    approach: str
    stages: list[StageTiming] = field(default_factory=list)
    ml_result: object = None
    rewrite_kind: str | None = None
    #: set by the broker transfer path: the topic the data went through
    broker_topic: str | None = None
    #: streaming runs with retry enabled record how many attempts ran (§6)
    attempts: int = 1
    #: §6 graceful degradation: the approach that failed before this run
    #: fell back to the materialize-to-DFS path (None = no degradation)
    degraded_from: str | None = None
    #: §6 lineage of the training input (streaming runs; None elsewhere)
    lineage: DatasetLineage | None = None
    #: §6 ML-stage recovery: which ladder tier produced the surviving model
    #: (``resume_checkpoint`` / ``replay_cache`` / ``replay_query``; None =
    #: no ML-stage recovery was needed)
    ml_recovery_tier: str | None = None
    #: dirty-data accounting from the recode UDF (rows nulled/skipped)
    transform_stats: dict = field(default_factory=dict)
    #: coordinator-HA takeovers that happened during this run (0 = the
    #: leader survived, or HA is off — the default)
    failovers: int = 0

    @property
    def total_sim_seconds(self) -> float:
        """Paper-scale seconds of the counted stages."""
        return sum(s.sim_seconds for s in self.stages if s.counted)

    @property
    def total_wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.stages if s.counted)

    def stage(self, name: str) -> StageTiming:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage {name!r}; have {[s.name for s in self.stages]}")

    def breakdown(self) -> str:
        """Human-readable stage table (simulated paper-scale seconds)."""
        lines = [f"{self.approach} — total {format_duration(self.total_sim_seconds)} (simulated)"]
        for s in self.stages:
            marker = "" if s.counted else "  [excluded from total]"
            lines.append(
                f"  {s.name:<22} {s.sim_seconds:8.1f} s   "
                f"in={format_bytes(s.bytes_in):>10}  out={format_bytes(s.bytes_out):>10}"
                f"{marker}"
            )
        return "\n".join(lines)
