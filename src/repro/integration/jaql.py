"""The naive baseline's third-party transformation hop: "Jaql".

In the paper's Figure 3 naive pipeline, the SQL result materialized on HDFS
is recoded and dummy-coded by Jaql, "since Jaql has built-in functions for
recoding of categorical variables and dummy coding", and Jaql compiles to
MapReduce.  This module is that tool: a small transformation engine whose
recode/dummy-code built-ins run as two MapReduce jobs over the DFS —

* job 1 scans the input and reduces to the global distinct values of the
  categorical columns (from which the recode map is assigned);
* job 2 rewrites every record (recode + one-hot expansion) and writes the
  transformed text back to the DFS.

Both jobs read from and write to the DFS — exactly the extra
materializations that make the naive approach lose to In-SQL transformation.
"""

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.hdfs.filesystem import DistributedFileSystem
from repro.iofmt.text import CsvInputFormat
from repro.mapreduce.framework import JobCounters, MapReduceJob
from repro.sql.types import Schema
from repro.transform.recode import RecodeMap
from repro.transform.spec import TransformSpec


@dataclass
class JaqlResult:
    """What one transform run produced."""

    output_dir: str
    recode_map: RecodeMap
    records: int
    distinct_job: JobCounters
    transform_job: JobCounters


class JaqlEngine:
    """Recode + dummy-code CSV data resident on the DFS, via MapReduce."""

    def __init__(self, cluster: Cluster, dfs: DistributedFileSystem):
        self.cluster = cluster
        self.dfs = dfs

    def transform(
        self,
        input_dir: str,
        output_dir: str,
        schema: Schema,
        spec: TransformSpec,
        num_reducers: int = 4,
    ) -> JaqlResult:
        """Transform ``input_dir`` CSV (with ``schema``) into ``output_dir``.

        Output column order matches the In-SQL transformation: recoded
        columns in place, dummy columns expanded in place ordered by code —
        so downstream ML configuration is identical across approaches.
        """
        recoded_indexes = [
            (name.lower(), schema.resolve(None, name)) for name in spec.all_recoded
        ]

        # ---- job 1: global distinct values of the categorical columns
        def distinct_mapper(fields: list[str]):
            for name, index in recoded_indexes:
                value = fields[index]
                if value != "":
                    yield (name, value), 1

        def distinct_combiner(key, values):
            yield 1  # collapse duplicates early, like Jaql's distinct

        def distinct_reducer(key, values):
            name, value = key
            yield f"{name},{value}"

        distinct_dir = output_dir.rstrip("/") + "__distinct"
        job1 = MapReduceJob(
            name="jaql-distinct",
            mapper=distinct_mapper,
            combiner=distinct_combiner,
            reducer=distinct_reducer,
            num_reducers=num_reducers,
            input_format=CsvInputFormat(),
        )
        counters1 = job1.run(self.cluster, self.dfs, input_dir, distinct_dir)

        distinct_rows = []
        for path in self.dfs.list_files(distinct_dir):
            for line in self.dfs.read_text(path).splitlines():
                if line:
                    name, value = line.split(",", 1)
                    distinct_rows.append((name, value))
        recode_map = RecodeMap.from_distinct_rows(distinct_rows)

        # ---- job 2: recode + dummy-code every record
        dummy_set = {c.lower() for c in spec.dummy}
        recode_only = {
            name for name, _ in recoded_indexes if name not in dummy_set
        }
        layout = []  # per input column: ("copy"|"recode"|"dummy", index, name)
        for i, column in enumerate(schema):
            name = column.name.lower()
            if name in dummy_set:
                layout.append(("dummy", i, name))
            elif name in recode_only:
                layout.append(("recode", i, name))
            else:
                layout.append(("copy", i, name))

        mappings = {
            name: recode_map.mapping_or_empty(name) for name, _ in recoded_indexes
        }
        cardinalities = {name: len(mappings[name]) for name in dummy_set}

        def transform_mapper(fields: list[str]):
            out: list[str] = []
            for kind, index, name in layout:
                value = fields[index]
                if kind == "copy":
                    out.append(value)
                elif kind == "recode":
                    code = mappings[name].get(value)
                    out.append("" if code is None else str(code))
                else:
                    k = cardinalities[name]
                    code = mappings[name].get(value)
                    indicators = ["0"] * k
                    if code is not None:
                        indicators[code - 1] = "1"
                    out.extend(indicators)
            # Spread records over reducers to keep output parallel.
            yield hash(fields[0]) if fields else 0, ",".join(out)

        job2 = MapReduceJob(
            name="jaql-transform",
            mapper=transform_mapper,
            reducer=None,
            num_reducers=num_reducers,
            input_format=CsvInputFormat(),
        )
        counters2 = job2.run(self.cluster, self.dfs, input_dir, output_dir)

        return JaqlResult(
            output_dir=output_dir,
            recode_map=recode_map,
            records=counters2.map_input_records,
            distinct_job=counters1,
            transform_job=counters2,
        )
