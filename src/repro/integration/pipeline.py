"""The end-to-end analytics pipeline: SQL -> transform -> transfer -> ML."""

import itertools
import pickle
import time

from repro.broker.broker import MessageBroker
from repro.broker.inputformat import BrokerInputFormat
from repro.broker.transfer_udf import BrokerTransferUDF
from repro.cluster.cluster import Cluster
from repro.cluster.cost import CostModel, paper_cost_model
from repro.common.errors import (
    DeadlineExceeded,
    IngestError,
    MLError,
    ReproError,
    SessionCancelled,
)
from repro.hdfs.filesystem import DistributedFileSystem
from repro.integration.jaql import JaqlEngine
from repro.integration.stages import DatasetLineage, PipelineResult, StageTiming
from repro.iofmt.inputformat import JobConf
from repro.iofmt.text import CsvInputFormat
from repro.caching.cache import CacheManager
from repro.ml.dataset import Dataset
from repro.ml.system import MLJobResult, MLSystem
from repro.rewriter.rewriter import QueryRewriter, RewritePlan
from repro.sql.engine import BigSQL
from repro.sql.executor import DistRelation
from repro.sql.types import Schema
from repro.transfer.coordinator import Coordinator
from repro.transfer.launcher import connect
from repro.transfer.stream_udf import StreamTransferUDF
from repro.transform.dummy import DummyCodeUDF
from repro.transform.effect import EffectCodeUDF, OrthogonalCodeUDF
from repro.transform.recode import LocalDistinctUDF, RecodeMap, RecodeUDF
from repro.transform.service import TransformService
from repro.transform.spec import TransformSpec

_run_counter = itertools.count(1)


class AnalyticsPipeline:
    """One integrated SQL+ML deployment, offering all connection strategies.

    ``byte_scale`` converts observed byte counts to paper scale: generate a
    scaled-down workload, set ``byte_scale`` to (paper bytes / generated
    bytes), and every simulated stage time comes out in paper-scale seconds.
    """

    def __init__(
        self,
        cluster: Cluster,
        dfs: DistributedFileSystem,
        engine: BigSQL,
        ml_system: MLSystem,
        coordinator: Coordinator | None = None,
        cost_model: CostModel | None = None,
        byte_scale: float = 1.0,
        workdir: str = "/pipeline",
    ):
        self.cluster = cluster
        self.dfs = dfs
        self.engine = engine
        self.ml_system = ml_system
        self.cost = cost_model or paper_cost_model()
        self.byte_scale = byte_scale
        self.workdir = workdir.rstrip("/")

        self.coordinator = coordinator or Coordinator(cluster)
        connect(self.coordinator, ml_system)
        engine.add_service("coordinator", self.coordinator)
        # §6: let the training-stage chaos sites (ml.iteration_kill,
        # checkpoint.*) reach the ML system even when it was constructed
        # before the fault machinery.
        if (
            getattr(ml_system, "fault_injector", None) is None
            and self.coordinator.recovery is not None
        ):
            ml_system.fault_injector = self.coordinator.recovery.injector

        self.broker = MessageBroker(
            ledger=cluster.ledger,
            clock=getattr(self.coordinator, "clock", None),
        )
        engine.add_service("broker", self.broker)
        if getattr(self.coordinator, "retry_budget", None) is not None:
            # Optional engine service: broker producers gate their append
            # retries on the deployment-wide retry token bucket.
            engine.add_service("retry_budget", self.coordinator.retry_budget)

        self.transforms = TransformService()
        self.cache = CacheManager(engine, self.transforms)
        self.rewriter = QueryRewriter(engine, self.transforms, cache=self.cache)
        self.rewriter_no_cache = QueryRewriter(engine, self.transforms, cache=None)
        self.jaql = JaqlEngine(cluster, dfs)

        for udf in (
            LocalDistinctUDF(),
            RecodeUDF(self.transforms),
            DummyCodeUDF(self.transforms),
            EffectCodeUDF(self.transforms),
            OrthogonalCodeUDF(self.transforms),
            StreamTransferUDF(),
            BrokerTransferUDF(),
        ):
            engine.register_table_udf(udf)

    # ----------------------------------------------------------------- naive

    def run_naive(
        self, user_sql: str, spec: TransformSpec, command: str, args: dict | None = None
    ) -> PipelineResult:
        """Figure 3 "naive": SQL -> DFS -> Jaql/MR -> DFS -> ML reads DFS."""
        run_id = next(_run_counter)
        result = PipelineResult(approach="naive")

        # Stage 1 (prep): run the query and materialize its result as text.
        before = self.cluster.ledger.snapshot()
        t0 = time.perf_counter()
        relation = self.engine.execute_distributed(user_sql)
        prep_dir = f"{self.workdir}/naive_{run_id}/prep"
        text_bytes = self._write_result_csv(relation, prep_dir)
        wall = time.perf_counter() - t0
        scan = self._delta(before, "sql.scan")
        result.stages.append(
            StageTiming(
                name="prep",
                sim_seconds=max(
                    self.cost.sql_scan_time(scan * self.byte_scale)
                    + self.cost.sql_output_time(text_bytes * self.byte_scale),
                    self.cost.dfs_write_time(text_bytes * self.byte_scale),
                ),
                wall_seconds=wall,
                bytes_in=scan * self.byte_scale,
                bytes_out=text_bytes * self.byte_scale,
            )
        )

        # Stage 2 (trsfm): the third-party Jaql/MapReduce hop.
        t0 = time.perf_counter()
        out_dir = f"{self.workdir}/naive_{run_id}/transformed"
        jaql_result = self.jaql.transform(prep_dir, out_dir, relation.schema, spec)
        wall = time.perf_counter() - t0
        transformed_bytes = self.dfs.total_size(out_dir)
        result.stages.append(
            StageTiming(
                name="trsfm",
                sim_seconds=(
                    self.cost.mr_pass_time(text_bytes * self.byte_scale, 0.0)
                    + self.cost.mr_pass_time(
                        text_bytes * self.byte_scale,
                        transformed_bytes * self.byte_scale,
                    )
                ),
                wall_seconds=wall,
                bytes_in=text_bytes * self.byte_scale,
                bytes_out=transformed_bytes * self.byte_scale,
            )
        )

        # Stage 3 (input for ml) + training.
        label_index, label_offset = self._label_position_after_transform(
            relation.schema, spec, jaql_result.recode_map
        )
        conf = JobConf(
            dict(
                self._ml_conf_props(label_index, label_offset),
                **{"input.path": out_dir},
            ),
            dfs=self.dfs,
        )
        ml_result, ingest_stage, train_stage = self._run_ml_from_dfs(
            command, args, conf, transformed_bytes
        )
        result.stages.append(ingest_stage)
        result.stages.append(train_stage)
        result.ml_result = ml_result
        return result

    # ----------------------------------------------------------------- insql

    def run_insql(
        self,
        user_sql: str,
        spec: TransformSpec,
        command: str,
        args: dict | None = None,
        use_cache: bool = False,
    ) -> PipelineResult:
        """Figure 3 "insql": UDF transformation pipelined with the query;
        the transformed result takes one DFS hop to the ML system."""
        run_id = next(_run_counter)
        plan = self._plan(user_sql, spec, use_cache)
        result = PipelineResult(approach="insql", rewrite_kind=plan.kind)

        pass1_stage = self._run_pass1(plan, spec)
        if pass1_stage is not None:
            result.stages.append(pass1_stage)

        before = self.cluster.ledger.snapshot()
        t0 = time.perf_counter()
        relation = self.engine.execute_distributed(plan.inner_sql)
        out_dir = f"{self.workdir}/insql_{run_id}/transformed"
        text_bytes = self._write_result_csv(relation, out_dir)
        wall = time.perf_counter() - t0
        scan = self._delta(before, "sql.scan")
        result.stages.append(
            StageTiming(
                name="prep+trsfm",
                sim_seconds=max(
                    self.cost.sql_scan_time(scan * self.byte_scale)
                    + self.cost.sql_output_time(text_bytes * self.byte_scale),
                    self.cost.dfs_write_time(text_bytes * self.byte_scale),
                ),
                wall_seconds=wall,
                bytes_in=scan * self.byte_scale,
                bytes_out=text_bytes * self.byte_scale,
            )
        )

        label_index, label_offset = self._label_position_from_plan(plan, spec)
        conf = JobConf(
            dict(
                self._ml_conf_props(label_index, label_offset),
                **{"input.path": out_dir},
            ),
            dfs=self.dfs,
        )
        ml_result, ingest_stage, train_stage = self._run_ml_from_dfs(
            command, args, conf, text_bytes
        )
        result.stages.append(ingest_stage)
        result.stages.append(train_stage)
        result.ml_result = ml_result
        result.lineage = DatasetLineage(
            approach="insql",
            user_sql=plan.user_query.to_sql(),
            rewrite_kind=plan.kind,
            inner_sql=plan.inner_sql,
            pass1_sql=plan.pass1_sql,
            map_handle=plan.map_handle,
            cached_view=plan.cached_view,
            spec=spec,
            command=command,
            args=dict(args or {}),
            job_id=f"mljob_{run_id}",
            cache_state=(
                self.cache.peek_kind(plan.user_query, spec) if use_cache else None
            ),
        )
        ml_result.lineage = result.lineage
        result.transform_stats = {
            "unseen_nulled": self._delta(before, "transform.unseen_nulled"),
            "rows_skipped": self._delta(before, "transform.rows_skipped"),
        }
        return result

    # ---------------------------------------------------------- insql+stream

    def run_insql_stream(
        self,
        user_sql: str,
        spec: TransformSpec,
        command: str,
        args: dict | None = None,
        use_cache: bool = False,
        max_attempts: int = 1,
        degrade_to_dfs: bool = False,
        tenant: str = "default",
        deadline_s: float | None = None,
    ) -> PipelineResult:
        """Figure 3 "insql+stream": everything pipelined, no DFS touch.

        ``deadline_s`` puts the whole run under one end-to-end budget: every
        blocking wait from the admission queue to the result wait derives
        from it, and an expired or cancelled session surfaces as the typed,
        *non-retryable* :class:`~repro.common.errors.DeadlineExceeded` /
        :class:`~repro.common.errors.SessionCancelled` — the attempt loop
        and the degrade tier below never retry a session whose budget is
        spent (a retry would just expire again, amplifying the overload).

        ``max_attempts > 1`` enables §6's recovery policy for streaming:
        since neither side supports mid-query recovery, a failed transfer
        restarts the *whole* pipeline from scratch ("the whole integration
        pipeline has to be restarted from scratch in case of a failure") —
        with a fresh session, up to the attempt budget.  (With a
        :class:`~repro.faults.recovery.RecoveryManager` installed on the
        coordinator, failures first go through the cheaper partial-restart
        tier; only exhausted budgets surface here.)

        ``degrade_to_dfs=True`` adds the last §6 tier: when every streaming
        attempt fails, fall back to the materialize-to-DFS path
        (:meth:`run_insql`) — slower but independent of the streaming
        machinery.  The returned result then has ``degraded_from`` set.
        """
        run_id = next(_run_counter)
        plan = self._plan(user_sql, spec, use_cache)
        result = PipelineResult(approach="insql+stream", rewrite_kind=plan.kind)

        pass1_stage = self._run_pass1(plan, spec)
        if pass1_stage is not None:
            result.stages.append(pass1_stage)

        label_index, label_offset = self._label_position_from_plan(plan, spec)
        job_id = f"mljob_{run_id}"
        # checkpoint.job_id is pinned per pipeline run (not per attempt), so
        # a full-pipeline restart resumes from the previous attempt's saves.
        conf_props = dict(
            self._ml_conf_props(label_index, label_offset),
            **self._checkpoint_props(job_id),
        )
        lineage = DatasetLineage(
            approach="insql+stream",
            user_sql=plan.user_query.to_sql(),
            rewrite_kind=plan.kind,
            inner_sql=plan.inner_sql,
            pass1_sql=plan.pass1_sql,
            map_handle=plan.map_handle,
            cached_view=plan.cached_view,
            spec=spec,
            command=command,
            args=dict(args or {}),
            job_id=job_id,
            cache_state=(
                self.cache.peek_kind(plan.user_query, spec) if use_cache else None
            ),
        )
        result.lineage = lineage

        attempt = 0
        before = self.cluster.ledger.snapshot()
        t0 = time.perf_counter()
        while True:
            attempt += 1
            session_id = f"session_{run_id}_a{attempt}"
            self.coordinator.create_session(
                session_id,
                command=command,
                args=dict(args or {}),
                conf_props=conf_props,
                tenant=tenant,
                deadline_s=deadline_s,
            )
            try:
                self.engine.execute(plan.final_sql(session_id))
                ml_result: MLJobResult = self.coordinator.wait_result(session_id)
                break
            except ReproError as exc:
                # Budget outcomes are terminal: no ladder tier, no fresh
                # attempt, no DFS degradation — re-raise typed immediately.
                if self._is_budget_failure(exc):
                    raise
                # §6 ML-stage ladder: a *training* fault (data fully
                # delivered) can be recovered without re-streaming — replay
                # the lineage.  Ingest/transfer faults fall through to the
                # full-restart attempt loop below, unchanged.
                recovered = self._recover_ml_stage(
                    exc, lineage, spec, command, args, conf_props, result
                )
                if recovered is not None:
                    ml_result = recovered
                    break
                if attempt >= max_attempts:
                    if degrade_to_dfs:
                        fallback = self.run_insql(
                            user_sql, spec, command, args=args, use_cache=use_cache
                        )
                        fallback.attempts = attempt
                        fallback.degraded_from = "insql+stream"
                        return fallback
                    raise
            finally:
                self.coordinator.close_session(session_id)
        wall = time.perf_counter() - t0
        result.attempts = attempt
        result.failovers = self._delta(before, "coordinator.failover")
        if result.ml_recovery_tier is None and ml_result.train_attempts > 1:
            # The cheapest tier ran *inside* the ML system: training crashed
            # and resumed in place from its checkpoint.
            result.ml_recovery_tier = "resume_checkpoint"

        scan = self._delta(before, "sql.scan")
        streamed = self._delta(before, "stream.sent")
        result.stages.append(
            StageTiming(
                name="prep+trsfm+input",
                sim_seconds=max(
                    self.cost.sql_scan_time(scan * self.byte_scale)
                    + self.cost.sql_output_time(streamed * self.byte_scale),
                    self.cost.ml_stream_ingest_time(streamed * self.byte_scale),
                ),
                wall_seconds=wall,
                bytes_in=scan * self.byte_scale,
                bytes_out=streamed * self.byte_scale,
            )
        )
        result.stages.append(
            self._train_stage(ml_result, streamed, args)
        )
        result.ml_result = ml_result
        ml_result.lineage = lineage
        result.transform_stats = {
            "unseen_nulled": self._delta(before, "transform.unseen_nulled"),
            "rows_skipped": self._delta(before, "transform.rows_skipped"),
        }
        return result

    # ---------------------------------------------------------- insql+broker

    def run_insql_broker(
        self,
        user_sql: str,
        spec: TransformSpec,
        command: str,
        args: dict | None = None,
        use_cache: bool = False,
        consumer_group: str = "ml",
        keep_topic: bool = False,
    ) -> PipelineResult:
        """§8's future-work alternative: transfer through a Kafka-like broker.

        The SQL side produces the transformed rows into a topic (one
        partition per ML consumer slot); the ML job then ingests through
        :class:`BrokerInputFormat`.  Compared to ``run_insql_stream`` this
        decouples the two systems in time and adds at-least-once recovery
        and replayability (``keep_topic=True`` retains the topic so further
        ML jobs can re-read it — the broker-as-cache use).

        Returns the result with the topic name in ``ml_result``'s conf via
        ``result.broker_topic``.
        """
        run_id = next(_run_counter)
        plan = self._plan(user_sql, spec, use_cache)
        result = PipelineResult(approach="insql+broker", rewrite_kind=plan.kind)

        pass1_stage = self._run_pass1(plan, spec)
        if pass1_stage is not None:
            result.stages.append(pass1_stage)

        topic = f"transfer_{run_id}"
        self.broker.create_topic(topic, self.ml_system.default_parallelism)
        label_index, label_offset = self._label_position_from_plan(plan, spec)

        # Phase 1: SQL produces into the topic (pipelined with the query).
        before = self.cluster.ledger.snapshot()
        t0 = time.perf_counter()
        self.engine.execute(
            f"SELECT * FROM TABLE(broker_transfer(({plan.inner_sql}), "
            f"'{topic}', {self.coordinator.batch_rows})) AS __broker"
        )
        produce_wall = time.perf_counter() - t0
        scan = self._delta(before, "sql.scan")
        produced = self._delta(before, "broker.in")
        result.stages.append(
            StageTiming(
                name="prep+trsfm+produce",
                sim_seconds=max(
                    self.cost.sql_scan_time(scan * self.byte_scale)
                    + self.cost.sql_output_time(produced * self.byte_scale),
                    self.cost.broker_hop_time(produced * self.byte_scale),
                ),
                wall_seconds=produce_wall,
                bytes_in=scan * self.byte_scale,
                bytes_out=produced * self.byte_scale,
            )
        )

        # Phase 2: the ML job consumes — decoupled in time, so it does NOT
        # overlap with the production phase (that independence is the point
        # of the broker; the serialization is its performance price).
        conf = JobConf(
            dict(
                self._ml_conf_props(label_index, label_offset),
                **{"broker.topic": topic, "broker.group": consumer_group},
            ),
            broker=self.broker,
        )
        if self.coordinator.recovery is not None:
            # §6 chaos reaches the broker path too: consumers survive
            # injected duplicate/corrupt fetches via offset dedup + refetch.
            conf.objects["fault.injector"] = self.coordinator.recovery.injector
        retry_budget = getattr(self.coordinator, "retry_budget", None)
        if retry_budget is not None:
            # Shared retry allowance: corrupted-record refetches draw from
            # the same deployment-wide bucket as every other retry site.
            conf.objects["retry.budget"] = retry_budget
        t0 = time.perf_counter()
        ml_result = self.ml_system.run_job(
            command=command,
            args=args,
            input_format=BrokerInputFormat(),
            conf=conf,
        )
        consume_wall = time.perf_counter() - t0
        result.stages.append(
            StageTiming(
                name="consume+input",
                sim_seconds=max(
                    produced * self.byte_scale / self.cost.broker_bps,
                    self.cost.ml_stream_ingest_time(produced * self.byte_scale),
                ),
                wall_seconds=consume_wall,
                bytes_in=produced * self.byte_scale,
                bytes_out=produced * self.byte_scale,
            )
        )
        result.stages.append(self._train_stage(ml_result, produced, args))
        result.ml_result = ml_result
        result.broker_topic = topic
        if not keep_topic:
            self.broker.delete_topic(topic)
        return result

    # -------------------------------------------------------------- caching

    def populate_caches(
        self,
        user_sql: str,
        spec: TransformSpec,
        cache_recode_map: bool = True,
        cache_transformed: bool = False,
    ) -> dict:
        """Build and store the §5 cache artifacts for a query+spec.

        Returns {"map_handle": ..., "view_name": ... or None}.
        """
        plan = self.rewriter_no_cache.plan(user_sql, spec)
        rows = self.engine.query_rows(plan.pass1_sql) if plan.pass1_sql else []
        recode_map = RecodeMap.from_distinct_rows(rows)
        if cache_recode_map:
            handle = self.cache.store_recode_map(plan.user_query, spec, recode_map)
        else:
            handle = plan.map_handle
            self.transforms.register(handle, recode_map)

        view_name = None
        if cache_transformed:
            view_name = f"__cache_view_{next(_run_counter)}"
            base_sql = plan.user_query.to_sql()
            columns = ", ".join(f"'{c}'" for c in spec.all_recoded)
            recode_sql = (
                f"SELECT * FROM TABLE(recode(({base_sql}), '{handle}', {columns})) "
                "AS __recoded"
                if spec.all_recoded
                else base_sql
            )
            if not cache_recode_map:
                # the view still needs its map resolvable at read time
                self.transforms.register(handle, recode_map)
            self.engine.create_materialized_view(view_name, recode_sql)
            self.cache.store_transformed(plan.user_query, spec, view_name, handle)
        return {"map_handle": handle, "view_name": view_name}

    # ------------------------------------------------------------- internals

    def _plan(self, user_sql: str, spec: TransformSpec, use_cache: bool) -> RewritePlan:
        rewriter = self.rewriter if use_cache else self.rewriter_no_cache
        return rewriter.plan(user_sql, spec)

    def _run_pass1(self, plan: RewritePlan, spec: TransformSpec) -> StageTiming | None:
        """Recoding phase 1: distinct scan + global recode map assignment."""
        if not plan.needs_pass1:
            return None
        before = self.cluster.ledger.snapshot()
        t0 = time.perf_counter()
        rows = self.engine.query_rows(plan.pass1_sql)
        recode_map = RecodeMap.from_distinct_rows(rows)
        self.transforms.register(plan.map_handle, recode_map)
        wall = time.perf_counter() - t0
        scan = self._delta(before, "sql.scan")
        return StageTiming(
            name="recode pass 1",
            sim_seconds=self.cost.distinct_pass_time(scan * self.byte_scale),
            wall_seconds=wall,
            bytes_in=scan * self.byte_scale,
            bytes_out=0.0,
        )

    def _checkpoint_props(self, job_id: str) -> dict:
        """Checkpointing conf for one pipeline run (empty when it is off)."""
        interval = getattr(self.ml_system, "checkpoint_interval", 0)
        store = getattr(self.ml_system, "checkpoint_store", None)
        if store is None or interval <= 0:
            return {}
        return {"checkpoint.interval": interval, "checkpoint.job_id": job_id}

    @staticmethod
    def _is_budget_failure(exc: BaseException) -> bool:
        """Is a spent budget (deadline/cancel) anywhere in the cause chain?

        Wrapping happens at several layers (``wait_result`` re-raises typed,
        but an error surfacing through the SQL executor may arrive wrapped
        in a generic :class:`TransferError`), so the walk covers both
        ``__cause__`` and ``__context__`` exactly like the train-stage test
        below.
        """
        seen: set[int] = set()
        node: BaseException | None = exc
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if isinstance(node, (DeadlineExceeded, SessionCancelled)):
                return True
            node = node.__cause__ or node.__context__
        return False

    @staticmethod
    def _is_train_stage_failure(exc: BaseException) -> bool:
        """Did this failure happen *after* the data was fully delivered?

        The ladder is only sound for training-stage faults: an
        :class:`IngestError` anywhere in the cause chain means rows were
        lost in flight, so the input must be re-streamed (full restart), not
        replayed from lineage.
        """
        seen: set[int] = set()
        node: BaseException | None = exc
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if isinstance(node, IngestError):
                return False
            if isinstance(node, MLError):
                return True
            node = node.__cause__ or node.__context__
        return False

    def _recover_ml_stage(
        self,
        exc: ReproError,
        lineage: DatasetLineage,
        spec: TransformSpec,
        command: str,
        args: dict | None,
        conf_props: dict,
        result: PipelineResult,
    ) -> MLJobResult | None:
        """§6 escalation ladder for an ML-stage fault; None = full restart.

        Resume-from-checkpoint already ran (and failed or was unavailable)
        inside the ML system by the time the fault surfaces here, so this
        walks the remaining tiers: replay the input from the §5 cache when
        one is warm, else re-run the rewritten query, else hand back to the
        caller's full-restart loop.
        """
        recovery = self.coordinator.recovery
        if recovery is None or not self._is_train_stage_failure(exc):
            return None
        cache_warm = lineage.cache_state is not None
        for tier in recovery.ml_stage_ladder(cache_warm):
            if tier == "full_restart":
                recovery.record_ml_recovery(lineage.job_id, tier, str(exc))
                return None
            try:
                if tier == "replay_cache":
                    plan = self.rewriter.plan(lineage.user_sql, spec)
                    if plan.kind == "no_cache":
                        continue  # cache went cold since planning
                    inner_sql = plan.inner_sql
                else:  # replay_query: the recorded rewritten transform query
                    inner_sql = lineage.inner_sql
                ml_result = self._train_from_replay(
                    inner_sql, command, args, conf_props
                )
            except ReproError:
                continue  # this tier failed too; escalate
            recovery.record_ml_recovery(lineage.job_id, tier, str(exc))
            result.ml_recovery_tier = tier
            ml_result.recovered_via = tier
            return ml_result
        return None

    def _train_from_replay(
        self, inner_sql: str, command: str, args: dict | None, conf_props: dict
    ) -> MLJobResult:
        """Re-run the transform query and train on a rebuilt stream layout.

        The rebuilt Dataset has the *exact* partition structure the killed
        streaming run had (per-worker round-robin over k channels), so the
        replayed training is weight-for-weight identical to an
        uninterrupted streamed run.  Replayed bytes charge the dedicated
        ``ml.replay`` counter, never the fault-free transfer categories.
        """
        relation = self.engine.execute_distributed(inner_sql)
        k = int(conf_props.get("stream.k", self.coordinator.default_k))
        conf = JobConf(dict(conf_props), coordinator=self.coordinator)
        parser = MLSystem._parser_from_conf(conf, command)
        partitions = self._rebuild_stream_partitions(relation.partitions, k, parser)
        self.cluster.ledger.add(
            "ml.replay",
            len(pickle.dumps(partitions, protocol=pickle.HIGHEST_PROTOCOL)),
        )
        return self.ml_system.train_local(command, args, Dataset(partitions), conf)

    @staticmethod
    def _rebuild_stream_partitions(
        sql_partitions: list, group_size: int, parser
    ) -> list[list]:
        """The streamed Dataset layout, recomputed from SQL-side partitions.

        SQL worker w sends row i of its partition to its channel ``i % k``
        (:func:`repro.transfer.stream_udf.plan_blocks`), and the ML job gets
        one split per channel in global index order — so split ``w*k + j``
        holds rows ``j::k`` of worker w's partition, in order.
        """
        partitions: list[list] = []
        for part in sql_partitions:
            for j in range(group_size):
                rows = part[j::group_size]
                partitions.append([parser(row) if parser else row for row in rows])
        return partitions

    def _run_ml_from_dfs(
        self, command: str, args: dict | None, conf: JobConf, input_bytes: int
    ) -> tuple[MLJobResult, StageTiming, StageTiming]:
        t0 = time.perf_counter()
        ml_result = self.ml_system.run_job(
            command=command,
            args=args,
            input_format=CsvInputFormat(),
            conf=conf,
        )
        wall = time.perf_counter() - t0
        ingest_stage = StageTiming(
            name="input for ml",
            sim_seconds=self.cost.ml_hdfs_ingest_time(input_bytes * self.byte_scale),
            wall_seconds=ml_result.ingest_stats.wall_seconds,
            bytes_in=input_bytes * self.byte_scale,
            bytes_out=input_bytes * self.byte_scale,
        )
        train_stage = self._train_stage(
            ml_result, input_bytes, None, wall - ml_result.ingest_stats.wall_seconds
        )
        return ml_result, ingest_stage, train_stage

    def _train_stage(
        self,
        ml_result: MLJobResult,
        data_bytes: int,
        args: dict | None,
        wall: float | None = None,
    ) -> StageTiming:
        iterations = int((args or {}).get("iterations", 10))
        # The training basis is the in-memory RDD size — (dim+1) doubles per
        # record — identical across connection strategies (the transport
        # format must not change what the solver iterates over).
        records = ml_result.dataset.count()
        rdd_bytes = 0.0
        if records:
            first = ml_result.dataset.first()
            dim = len(getattr(first, "features", ())) if hasattr(first, "features") else 0
            rdd_bytes = float(records) * (dim + 1) * 8.0
        return StageTiming(
            name="ml train",
            sim_seconds=iterations
            * self.cost.sgd_iteration_time(rdd_bytes * self.byte_scale),
            wall_seconds=wall if wall is not None else 0.0,
            bytes_in=rdd_bytes * self.byte_scale,
            counted=False,  # the paper excludes ML runtime from the comparison
        )

    def _write_result_csv(self, relation: DistRelation, out_dir: str) -> int:
        """Materialize a distributed result as per-worker CSV part files."""
        self.dfs.mkdirs(out_dir)
        dtypes = [c.dtype for c in relation.schema]
        total = 0
        worker_nodes = list(self.cluster.workers)
        for worker_id, rows in enumerate(relation.partitions):
            if not rows:
                continue
            lines = [
                ",".join(dt.render(v) for dt, v in zip(dtypes, row)) for row in rows
            ]
            text = "\n".join(lines) + "\n"
            client_ip = worker_nodes[worker_id % len(worker_nodes)].ip
            self.dfs.write_text(
                f"{out_dir}/part-{worker_id:05d}", text, client_ip=client_ip
            )
            total += len(text.encode("utf-8"))
        return total

    def _ml_conf_props(self, label_index: int | None, label_offset: float) -> dict:
        """ML-side parsing configuration for this pipeline's record flow.

        With no label (unsupervised specs) records parse as plain feature
        vectors; otherwise as labeled points with the label at its computed
        position, offset-adjusted when the label was recoded."""
        if label_index is None:
            return {"record.format": "vector_csv"}
        return {
            "record.format": "labeled_csv",
            "label.index": label_index,
            "label.offset": label_offset,
        }

    def _label_position_from_plan(
        self, plan: RewritePlan, spec: TransformSpec
    ) -> tuple[int | None, float]:
        if spec.label is None:
            return None, 0.0
        schema = self.engine.plan(plan.inner_sql).schema
        names = [c.name.lower() for c in schema]
        label = spec.label.lower()
        if label not in names:
            raise ReproError(
                f"label column {spec.label!r} not in transformed output {names} "
                "(was it dummy-coded away?)"
            )
        offset = 1.0 if label in {c.lower() for c in spec.all_recoded} else 0.0
        return names.index(label), offset

    def _label_position_after_transform(
        self, schema: Schema, spec: TransformSpec, recode_map: RecodeMap
    ) -> tuple[int | None, float]:
        """Label index in the Jaql-transformed column layout."""
        if spec.label is None:
            return None, 0.0
        dummy_set = {c.lower() for c in spec.dummy}
        label = spec.label.lower()
        position = 0
        for column in schema:
            name = column.name.lower()
            if name == label:
                if name in dummy_set:
                    raise ReproError(f"label {label!r} cannot be dummy-coded")
                offset = 1.0 if name in {c.lower() for c in spec.all_recoded} else 0.0
                return position, offset
            position += recode_map.cardinality(name) if name in dummy_set else 1
        raise ReproError(f"label column {spec.label!r} not found in {schema.names}")

    def _delta(self, before: dict, category: str) -> int:
        return self.cluster.ledger.get(category) - before.get(category, 0)
