"""End-to-end integration pipelines (the paper's §7 experiment subjects).

:class:`~repro.integration.pipeline.AnalyticsPipeline` wires everything
together and exposes the three connection strategies of Figure 3:

* ``run_naive``      — SQL result to DFS, Jaql/MapReduce transform to DFS,
  ML ingests from DFS (three materializations);
* ``run_insql``      — transformations pipelined into the SQL query via
  UDFs; one DFS hop remains between SQL and ML;
* ``run_insql_stream`` — In-SQL transformation plus the §3 parallel
  streaming transfer; nothing touches the DFS.

plus the §5 caching variants of Figure 4 (``use_cache`` / cache-population
flags).  Every run returns a :class:`~repro.integration.stages.PipelineResult`
with both wall-clock and paper-scale simulated stage timings.
"""

from repro.integration.jaql import JaqlEngine
from repro.integration.pipeline import AnalyticsPipeline
from repro.integration.stages import PipelineResult, StageTiming

__all__ = ["AnalyticsPipeline", "JaqlEngine", "PipelineResult", "StageTiming"]
