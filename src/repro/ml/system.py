"""The ML system facade: command-addressable jobs over InputFormats.

This is the unit the paper's coordinator launches in §3 step 2: the SQL-side
UDF passes along "the command and arguments to invoke the desired ML
algorithm"; when all SQL workers have registered, the coordinator calls
:meth:`MLSystem.run_job` with exactly those.  The input format is the *only*
ingestion path — swap ``TextInputFormat`` for ``SQLStreamInputFormat`` and
nothing else changes, which is the paper's generality claim made concrete.

§6 additions: when a :class:`~repro.checkpoint.CheckpointStore` is attached,
``run_job`` hands every iterative trainer a
:class:`~repro.checkpoint.TrainCheckpointer` (smuggled through the args dict
under the reserved ``checkpoint`` key) and retries a crashed training run in
place — the dataset is still in memory, so resume-from-checkpoint is the
cheapest recovery tier.  :meth:`train_local` trains on an already-built
Dataset, which is what the pipeline's lineage-replay tiers use.
"""

from dataclasses import dataclass
from typing import Any, Callable

from repro.cluster.cluster import Cluster
from repro.common.errors import MLError
from repro.iofmt.inputformat import InputFormat, JobConf
from repro.ml.algorithms import (
    DecisionTree,
    KMeans,
    LinearRegression,
    LogisticRegressionWithSGD,
    NaiveBayes,
    SVMWithSGD,
)
from repro.ml.dataset import Dataset, labeled_point_from_fields
from repro.ml.job import IngestStats, MLJob


@dataclass
class MLJobResult:
    """Everything one ML job produced."""

    command: str
    dataset: Dataset
    ingest_stats: IngestStats
    model: Any
    #: how many times training ran (1 = no fault; >1 = checkpoint resume)
    train_attempts: int = 1
    #: iteration the surviving training attempt resumed from (None = fresh)
    resumed_from_iteration: int | None = None
    #: recovery tier that produced this result (None = no recovery needed)
    recovered_via: str | None = None
    #: DatasetLineage describing how the training input was produced (§6)
    lineage: Any = None


def _default_algorithms() -> dict[str, Callable[[Dataset, dict], Any]]:
    return {
        "svm_with_sgd": lambda ds, args: SVMWithSGD.train(
            ds,
            iterations=int(args.get("iterations", 10)),
            step=float(args.get("step", 1.0)),
            reg_param=float(args.get("reg_param", 0.01)),
            minibatch_fraction=float(args.get("minibatch_fraction", 1.0)),
            seed=int(args.get("seed", 42)),
            checkpoint=args.get("checkpoint"),
        ),
        "logistic_regression": lambda ds, args: LogisticRegressionWithSGD.train(
            ds,
            iterations=int(args.get("iterations", 50)),
            step=float(args.get("step", 1.0)),
            reg_param=float(args.get("reg_param", 0.0)),
            seed=int(args.get("seed", 42)),
            checkpoint=args.get("checkpoint"),
        ),
        "naive_bayes": lambda ds, args: NaiveBayes.train(
            ds, smoothing=float(args.get("smoothing", 1.0))
        ),
        "decision_tree": lambda ds, args: DecisionTree.train(
            ds,
            max_depth=int(args.get("max_depth", 5)),
            min_samples_split=int(args.get("min_samples_split", 8)),
            max_bins=int(args.get("max_bins", 32)),
        ),
        "kmeans": lambda ds, args: KMeans.train(
            ds,
            k=int(args.get("k", 2)),
            max_iterations=int(args.get("max_iterations", 20)),
            seed=int(args.get("seed", 42)),
            n_init=int(args.get("n_init", 1)),
            checkpoint=args.get("checkpoint") if int(args.get("n_init", 1)) == 1 else None,
        ),
        "linear_regression": lambda ds, args: (
            LinearRegression.train_sgd(
                ds,
                iterations=int(args.get("iterations", 100)),
                step=float(args.get("step", 0.1)),
                reg_param=float(args.get("reg_param", 0.0)),
                checkpoint=args.get("checkpoint"),
            )
            if str(args.get("solver", "normal")) == "sgd"
            else LinearRegression.train(ds, reg_param=float(args.get("reg_param", 0.0)))
        ),
        # "ingest only" pseudo-command: build the RDD, skip training.  Used
        # by benchmarks that time exactly the paper's "input for ml" stage.
        "noop": lambda ds, args: None,
    }


class MLSystem:
    """A cluster-resident ML runtime with a registry of named algorithms."""

    def __init__(
        self,
        cluster: Cluster,
        workers_per_node: int = 6,
        checkpoint_store=None,  # CheckpointStore | None (§6 resumable training)
        checkpoint_interval: int = 0,  # iterations between saves; 0 = off
        fault_injector=None,  # FaultInjector | None (§6 training chaos)
    ):
        self.cluster = cluster
        self.workers_per_node = workers_per_node
        self.checkpoint_store = checkpoint_store
        self.checkpoint_interval = checkpoint_interval
        self.fault_injector = fault_injector
        self._algorithms = _default_algorithms()

    @property
    def default_parallelism(self) -> int:
        """Total worker slots (the paper runs 6 Spark workers per server)."""
        return len(self.cluster.workers) * self.workers_per_node

    def register_algorithm(
        self, command: str, trainer: Callable[[Dataset, dict], Any]
    ) -> None:
        """Add/replace an invocable algorithm — the extensibility the paper
        wants ("more ML systems and special algorithms are developed every
        day")."""
        self._algorithms[command.lower()] = trainer

    def known_commands(self) -> list[str]:
        return sorted(self._algorithms)

    def trainer(self, command: str) -> Callable[[Dataset, dict], Any]:
        """The registered trainer for a command (for out-of-job retraining,
        e.g. on a validation split)."""
        trainer = self._algorithms.get(command.lower())
        if trainer is None:
            raise MLError(
                f"unknown ML command {command!r}; known: {self.known_commands()}"
            )
        return trainer

    def run_job(
        self,
        command: str,
        args: dict | None,
        input_format: InputFormat,
        conf: JobConf,
        num_workers: int | None = None,
        record_parser: Callable | None = None,
    ) -> MLJobResult:
        """Ingest through ``input_format`` and train ``command`` on the RDD."""
        trainer = self.trainer(command)
        args = dict(args or {})
        batch_parser = None
        if record_parser is None:
            record_parser = self._parser_from_conf(conf, command)
            batch_parser = self._batch_parser_from_conf(conf)
        job = MLJob(
            cluster=self.cluster,
            input_format=input_format,
            conf=conf,
            num_workers=num_workers or self.default_parallelism,
            record_parser=record_parser,
            batch_parser=batch_parser,
        )
        dataset, stats = job.ingest()
        return self._train(trainer, command, args, dataset, stats, conf)

    def train_local(
        self,
        command: str,
        args: dict | None,
        dataset: Dataset,
        conf: JobConf | None = None,
    ) -> MLJobResult:
        """Train on an already-built Dataset — no ingest, no ``ml.ingest``
        accounting.  This is the §6 lineage-replay entry point: the pipeline
        rebuilds the exact streamed partition layout and retrains."""
        trainer = self.trainer(command)
        conf = conf or JobConf()
        stats = IngestStats(
            records=dataset.count(), num_splits=dataset.num_partitions
        )
        return self._train(trainer, command, dict(args or {}), dataset, stats, conf)

    # ------------------------------------------------------------- internals

    def _train(
        self,
        trainer: Callable,
        command: str,
        args: dict,
        dataset: Dataset,
        stats: IngestStats,
        conf: JobConf,
    ) -> MLJobResult:
        """Run the trainer, retrying in place via checkpoint resume (§6)."""
        checkpointer = self._make_checkpointer(command, conf)
        if checkpointer is not None:
            args = dict(args, checkpoint=checkpointer)
        can_resume = checkpointer is not None and checkpointer.can_resume
        max_retries = int(conf.get("train.retries", 1 if can_resume else 0))
        recovery = self._recovery_from_conf(conf)
        attempts = 0
        while True:
            attempts += 1
            try:
                model = trainer(dataset, args)
                break
            except MLError as exc:
                if not can_resume or attempts > max_retries:
                    raise
                if recovery is not None:
                    recovery.record_ml_recovery(
                        checkpointer.job_id, "resume_checkpoint", str(exc)
                    )
        return MLJobResult(
            command=command.lower(),
            dataset=dataset,
            ingest_stats=stats,
            model=model,
            train_attempts=attempts,
            resumed_from_iteration=(
                checkpointer.restored_iteration if checkpointer is not None else None
            ),
        )

    def _make_checkpointer(self, command: str, conf: JobConf):
        """Build the per-job iteration hooks, when anything needs them.

        A full checkpointer needs an attached store and a positive interval
        (``checkpoint.interval`` property overrides the system default); a
        store-less one is still created when an enabled injector is present,
        so the ``ml.iteration_kill`` chaos site fires even for runs testing
        the no-checkpoint recovery tiers — or when the session carries an
        *armed* budget, because the iteration hook is also where trainers
        observe cancellation and deadlines between iterations.
        """
        interval = int(conf.get("checkpoint.interval", self.checkpoint_interval))
        store = self.checkpoint_store if interval > 0 else None
        injector = self.fault_injector or conf.get_object("fault.injector")
        if injector is not None and not injector.enabled:
            injector = None
        # An unbounded, uncancelled budget still gets the hook: it can be
        # cancelled later, and this is where the trainer would notice.
        budget = conf.get_object("budget")
        if store is None and injector is None and budget is None:
            return None
        from repro.checkpoint import TrainCheckpointer

        job_id = str(conf.get("checkpoint.job_id") or f"mljob_{command.lower()}")
        return TrainCheckpointer(
            job_id=job_id,
            store=store,
            interval=interval if interval > 0 else 1,
            injector=injector,
            budget=budget,
        )

    @staticmethod
    def _recovery_from_conf(conf: JobConf):
        """The RecoveryManager reachable from this job's conf, if any."""
        recovery = conf.get_object("recovery")
        if recovery is not None:
            return recovery
        coordinator = conf.get_object("coordinator")
        return getattr(coordinator, "recovery", None)

    @staticmethod
    def _parser_from_conf(conf: JobConf, command: str) -> Callable | None:
        """Default record parsing: labeled points for supervised commands.

        ``record.format`` property: ``labeled_csv`` (list/tuple of fields,
        label at ``label.index``, default last), ``vector_csv`` (all fields
        are features), or ``raw`` (no parsing).
        """
        record_format = conf.get("record.format", "labeled_csv")
        if record_format == "raw":
            return None
        label_index = int(conf.get("label.index", -1))
        # Recoded categorical labels arrive as 1..K; binary trainers want
        # 0/1, so pipelines set label.offset=1 for recoded labels.
        label_offset = float(conf.get("label.offset", 0.0))
        if record_format == "labeled_csv":
            if label_offset == 0.0:
                return lambda fields: labeled_point_from_fields(fields, label_index)

            def parse_with_offset(fields):
                point = labeled_point_from_fields(fields, label_index)
                from repro.ml.dataset import LabeledPoint

                return LabeledPoint(point.label - label_offset, point.features)

            return parse_with_offset
        if record_format == "vector_csv":
            import numpy as np

            return lambda fields: np.array([float(v) for v in fields], dtype=float)
        raise MLError(f"unknown record.format {record_format!r}")

    @staticmethod
    def _batch_parser_from_conf(conf: JobConf) -> Callable | None:
        """The columnar twin of :meth:`_parser_from_conf`: a ColumnBatch ->
        (X, y) kernel for ``labeled_csv`` jobs.  Row-frame streams never see
        it; a columnar stream's batches go straight to float64 arrays with
        the same label selection and offset as the per-row parser."""
        if conf.get("record.format", "labeled_csv") != "labeled_csv":
            return None
        label_index = int(conf.get("label.index", -1))
        label_offset = float(conf.get("label.offset", 0.0))
        from repro.columnar.batch import batch_to_xy

        return lambda batch: batch_to_xy(batch, label_index, label_offset)
