"""Mahout-style ML: algorithms implemented *as MapReduce jobs* over the DFS.

§1: "If an analyst wants to use an existing ML algorithm in Mahout or if
she has her own analytics algorithm already implemented in MapReduce, she
has to write the data into HDFS, run her analytics algorithm, and store
results back into HDFS."  This module is that second kind of big ML system:
training runs as MapReduce jobs over CSV text resident on the DFS, and the
fitted model is written back to the DFS — no shared in-memory anything with
the SQL side.

Two trainers are provided, mirroring Mahout's classics:

* :class:`MapReduceNaiveBayes` — one MR pass accumulating per-class counts
  and per-class feature sums; the reducer emits sufficient statistics and
  the driver assembles a :class:`~repro.ml.algorithms.naive_bayes.NaiveBayesModel`;
* :class:`MapReduceKMeans` — Lloyd's iterations, one MR job each: mappers
  assign points to the nearest current center (broadcast through the job
  configuration, like Mahout's distributed cache), a combiner pre-sums, and
  reducers emit the new centers.

Both consume their input through the same CSV InputFormat the rest of the
ecosystem uses — so the In-SQL transformed output written by ``run_insql``
feeds them unchanged, which is exactly the paper's generality story.
"""

import json

import numpy as np

from repro.cluster.cluster import Cluster
from repro.common.errors import MLError
from repro.hdfs.filesystem import DistributedFileSystem
from repro.iofmt.text import CsvInputFormat
from repro.mapreduce.framework import MapReduceJob
from repro.ml.algorithms.kmeans import KMeansModel
from repro.ml.algorithms.naive_bayes import NaiveBayesModel


class MapReduceNaiveBayes:
    """Multinomial naive Bayes trained by one MapReduce pass."""

    @staticmethod
    def train(
        cluster: Cluster,
        dfs: DistributedFileSystem,
        input_dir: str,
        label_index: int = -1,
        smoothing: float = 1.0,
        model_path: str | None = None,
    ) -> NaiveBayesModel:
        """Train over CSV records in ``input_dir``; optionally persist the
        model as JSON at ``model_path`` ("store results back into HDFS")."""

        def mapper(fields: list[str]):
            values = [float(v) for v in fields]
            index = label_index if label_index >= 0 else len(values) + label_index
            label = values[index]
            features = values[:index] + values[index + 1 :]
            yield label, ("stats", 1, features)

        def combiner(label, values):
            count = 0
            sums: list[float] | None = None
            for _tag, n, features in values:
                count += n
                if sums is None:
                    sums = list(features)
                else:
                    for i, f in enumerate(features):
                        sums[i] += f
            yield ("stats", count, sums)

        def reducer(label, values):
            count = 0
            sums: list[float] | None = None
            for _tag, n, features in values:
                count += n
                if sums is None:
                    sums = list(features)
                else:
                    for i, f in enumerate(features):
                        sums[i] += f
            yield json.dumps({"label": label, "count": count, "sums": sums})

        job = MapReduceJob(
            name="mr-naive-bayes",
            mapper=mapper,
            combiner=combiner,
            reducer=reducer,
            num_reducers=len(cluster.workers),
            input_format=CsvInputFormat(),
        )
        out_dir = input_dir.rstrip("/") + "__nb_stats"
        counters = job.run(cluster, dfs, input_dir, out_dir)
        if counters.map_input_records == 0:
            raise MLError("cannot train naive Bayes on empty input")

        stats = []
        for path in dfs.list_files(out_dir):
            for line in dfs.read_text(path).splitlines():
                if line:
                    stats.append(json.loads(line))
        stats.sort(key=lambda s: s["label"])
        labels = np.array([s["label"] for s in stats])
        total = sum(s["count"] for s in stats)
        log_prior = np.log(np.array([s["count"] for s in stats], float) / total)
        dim = len(stats[0]["sums"])
        log_likelihood = np.zeros((len(stats), dim))
        for i, s in enumerate(stats):
            sums = np.array(s["sums"], float) + smoothing
            if (sums <= 0).any():
                raise MLError("multinomial naive Bayes requires non-negative features")
            log_likelihood[i] = np.log(sums / sums.sum())
        model = NaiveBayesModel(
            labels=labels, log_prior=log_prior, log_likelihood=log_likelihood
        )
        if model_path is not None:
            dfs.write_text(
                model_path,
                json.dumps(
                    {
                        "kind": "naive_bayes",
                        "labels": labels.tolist(),
                        "log_prior": log_prior.tolist(),
                        "log_likelihood": log_likelihood.tolist(),
                    }
                ),
            )
        return model


class MapReduceKMeans:
    """Lloyd's k-means, one MapReduce job per iteration."""

    @staticmethod
    def train(
        cluster: Cluster,
        dfs: DistributedFileSystem,
        input_dir: str,
        k: int,
        max_iterations: int = 10,
        tolerance: float = 1e-4,
        seed: int = 42,
        model_path: str | None = None,
    ) -> KMeansModel:
        """Cluster CSV feature vectors in ``input_dir``."""
        # Seed centers from the first k distinct records (a driver-side
        # sample read, like Mahout's random seed job).
        sample: list[tuple] = []
        fmt = CsvInputFormat()
        from repro.iofmt.inputformat import JobConf

        conf = JobConf({"input.path": input_dir}, dfs=dfs)
        rng = np.random.default_rng(seed)
        for split in fmt.get_splits(conf, len(cluster.workers)):
            with fmt.create_record_reader(split, conf) as reader:
                for fields in reader:
                    sample.append(tuple(float(v) for v in fields))
                    if len(sample) >= max(200, 10 * k):
                        break
            if len(sample) >= max(200, 10 * k):
                break
        distinct = list(dict.fromkeys(sample))
        if len(distinct) < k:
            raise MLError(f"need at least k={k} distinct points")
        centers = np.array(
            [distinct[i] for i in rng.choice(len(distinct), size=k, replace=False)]
        )

        cost = float("inf")
        iterations_run = 0
        for iteration in range(max_iterations):
            iterations_run += 1
            current = centers  # captured by the mapper closure (job "conf")

            def mapper(fields: list[str]):
                point = np.array([float(v) for v in fields])
                d2 = ((current - point) ** 2).sum(axis=1)
                assignment = int(np.argmin(d2))
                yield assignment, (1, point.tolist(), float(d2[assignment]))

            def combiner(assignment, values):
                count, sums, cost_sum = 0, None, 0.0
                for n, point, c in values:
                    count += n
                    cost_sum += c
                    if sums is None:
                        sums = list(point)
                    else:
                        for i, p in enumerate(point):
                            sums[i] += p
                yield (count, sums, cost_sum)

            def reducer(assignment, values):
                count, sums, cost_sum = 0, None, 0.0
                for n, point, c in values:
                    count += n
                    cost_sum += c
                    if sums is None:
                        sums = list(point)
                    else:
                        for i, p in enumerate(point):
                            sums[i] += p
                center = [s / count for s in sums]
                yield json.dumps(
                    {"cluster": assignment, "center": center, "count": count,
                     "cost": cost_sum}
                )

            job = MapReduceJob(
                name=f"mr-kmeans-iter{iteration}",
                mapper=mapper,
                combiner=combiner,
                reducer=reducer,
                num_reducers=min(k, len(cluster.workers)),
                input_format=CsvInputFormat(),
            )
            out_dir = input_dir.rstrip("/") + f"__kmeans_iter{iteration}"
            job.run(cluster, dfs, input_dir, out_dir)

            new_centers = centers.copy()
            new_cost = 0.0
            for path in dfs.list_files(out_dir):
                for line in dfs.read_text(path).splitlines():
                    if not line:
                        continue
                    record = json.loads(line)
                    new_centers[record["cluster"]] = record["center"]
                    new_cost += record["cost"]
            moved = float(np.abs(new_centers - centers).max())
            centers = new_centers
            cost = new_cost
            if moved < tolerance:
                break

        model = KMeansModel(centers=centers, cost=cost, iterations_run=iterations_run)
        if model_path is not None:
            dfs.write_text(
                model_path,
                json.dumps(
                    {"kind": "kmeans", "centers": centers.tolist(), "cost": cost}
                ),
            )
        return model
