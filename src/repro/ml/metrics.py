"""Evaluation metrics for the trained models."""

import numpy as np

from repro.common.errors import MLError


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, int]:
    """Binary confusion counts: tp/fp/tn/fn with 1 as the positive class."""
    y_true, y_pred = _validate(y_true, y_pred)
    return {
        "tp": int(((y_true == 1) & (y_pred == 1)).sum()),
        "fp": int(((y_true == 0) & (y_pred == 1)).sum()),
        "tn": int(((y_true == 0) & (y_pred == 0)).sum()),
        "fn": int(((y_true == 1) & (y_pred == 0)).sum()),
    }


def precision(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """tp / (tp + fp); 0.0 when nothing was predicted positive."""
    cm = confusion_matrix(y_true, y_pred)
    denominator = cm["tp"] + cm["fp"]
    return cm["tp"] / denominator if denominator else 0.0


def recall(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """tp / (tp + fn); 0.0 when there are no positives."""
    cm = confusion_matrix(y_true, y_pred)
    denominator = cm["tp"] + cm["fn"]
    return cm["tp"] / denominator if denominator else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    p, r = precision(y_true, y_pred), recall(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) formula."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=float)
    if len(y_true) != len(scores):
        raise MLError("auc: label/score length mismatch")
    positives = scores[y_true == 1]
    negatives = scores[y_true == 0]
    if len(positives) == 0 or len(negatives) == 0:
        raise MLError("auc needs both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=float)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0  # average rank for ties
        i = j + 1
    rank_sum = ranks[y_true == 1].sum()
    n_pos, n_neg = len(positives), len(negatives)
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true = np.asarray(y_true, float)
    y_pred = np.asarray(y_pred, float)
    if len(y_true) != len(y_pred):
        raise MLError("rmse: length mismatch")
    return float(np.sqrt(((y_true - y_pred) ** 2).mean()))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, float)
    y_pred = np.asarray(y_pred, float)
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise MLError(
            f"metric: length mismatch ({len(y_true)} labels, {len(y_pred)} predictions)"
        )
    if len(y_true) == 0:
        raise MLError("metric: empty inputs")
    return y_true, y_pred
