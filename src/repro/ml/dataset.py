"""In-memory partitioned dataset — the RDD of this reproduction."""

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LabeledPoint:
    """A training example: numeric label plus a dense feature vector."""

    label: float
    features: np.ndarray

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LabeledPoint)
            and self.label == other.label
            and np.array_equal(self.features, other.features)
        )

    def __hash__(self) -> int:
        return hash((self.label, self.features.tobytes()))


class Dataset:
    """A list of record partitions with Spark-like bulk operations.

    Everything is eager and in-memory — the paper's streaming experiment
    measures precisely the time "till the in-memory RDD is constructed",
    so construction is the interesting part; transformation laziness is not.
    """

    def __init__(self, partitions: list[list]):
        self._partitions = [list(p) for p in partitions]

    @staticmethod
    def from_records(records: Iterable, num_partitions: int = 4) -> "Dataset":
        """Round-robin records into partitions."""
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        partitions: list[list] = [[] for _ in range(num_partitions)]
        for i, record in enumerate(records):
            partitions[i % num_partitions].append(record)
        return Dataset(partitions)

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def partitions(self) -> list[list]:
        """Direct (read-only by convention) access to the partition lists."""
        return self._partitions

    def count(self) -> int:
        return sum(len(p) for p in self._partitions)

    def collect(self) -> list:
        out: list = []
        for p in self._partitions:
            out.extend(p)
        return out

    def map(self, fn: Callable) -> "Dataset":
        return Dataset([[fn(r) for r in p] for p in self._partitions])

    def filter(self, fn: Callable) -> "Dataset":
        return Dataset([[r for r in p if fn(r)] for p in self._partitions])

    def map_partitions(self, fn: Callable[[list], list]) -> "Dataset":
        return Dataset([list(fn(p)) for p in self._partitions])

    def sample(self, fraction: float, seed: int = 0) -> "Dataset":
        """Bernoulli sample per record (deterministic under the seed)."""
        rng = np.random.default_rng(seed)
        return Dataset(
            [[r for r in p if rng.random() < fraction] for p in self._partitions]
        )

    def first(self):
        for p in self._partitions:
            if p:
                return p[0]
        raise IndexError("dataset is empty")

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Stack LabeledPoint records into (X, y) numpy arrays."""
        points = self.collect()
        if not points:
            return np.empty((0, 0)), np.empty((0,))
        X = np.stack([p.features for p in points]).astype(float)
        y = np.array([p.label for p in points], dtype=float)
        return X, y

    def partition_arrays(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-partition (X, y) arrays — what iterative solvers work over,
        mimicking MLlib's per-partition gradient aggregation."""
        out = []
        for p in self._partitions:
            if not p:
                continue
            X = np.stack([lp.features for lp in p]).astype(float)
            y = np.array([lp.label for lp in p], dtype=float)
            out.append((X, y))
        return out


def points_to_arrays(points: list) -> tuple[np.ndarray, np.ndarray]:
    """Stack a list of LabeledPoints into one (X, y) pair."""
    if not points:
        return np.empty((0, 0)), np.empty((0,))
    X = np.stack([p.features for p in points]).astype(float)
    y = np.array([p.label for p in points], dtype=float)
    return X, y


class ArrayDataset(Dataset):
    """A Dataset whose partitions are (X, y) feature/label arrays.

    Columnar ingestion lands here: received ColumnBatches become float64
    matrices directly and the iterative solvers read
    :meth:`partition_arrays` with no per-row LabeledPoint objects ever
    built.  Row-oriented accessors (``collect``, ``map``, ``first``, ...)
    still work — LabeledPoints are synthesized lazily, once, only when
    something actually asks for rows.
    """

    def __init__(self, arrays: list[tuple[np.ndarray, np.ndarray]]):
        self._arrays = [
            (np.asarray(X, dtype=float), np.asarray(y, dtype=float))
            for X, y in arrays
        ]
        self._rows: list[list] | None = None  # lazy LabeledPoint partitions

    # Base-class methods read ``self._partitions``; materialize it on first
    # row-level access so the fast paths below never pay for it.
    @property
    def _partitions(self) -> list[list]:
        if self._rows is None:
            self._rows = [
                [
                    LabeledPoint(float(label), np.asarray(features, dtype=float))
                    for label, features in zip(y, X)
                ]
                for X, y in self._arrays
            ]
        return self._rows

    @property
    def num_partitions(self) -> int:
        return len(self._arrays)

    def count(self) -> int:
        return sum(len(y) for _, y in self._arrays)

    def first(self):
        for X, y in self._arrays:
            if len(y):
                return LabeledPoint(float(y[0]), np.asarray(X[0], dtype=float))
        raise IndexError("dataset is empty")

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        pairs = [(X, y) for X, y in self._arrays if len(y)]
        if not pairs:
            return np.empty((0, 0)), np.empty((0,))
        if len(pairs) == 1:
            return pairs[0]
        return (
            np.concatenate([X for X, _ in pairs]),
            np.concatenate([y for _, y in pairs]),
        )

    def partition_arrays(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(X, y) for X, y in self._arrays if len(y)]


def labeled_point_from_fields(
    fields: list, label_index: int = -1
) -> LabeledPoint:
    """Build a LabeledPoint from a row of numeric values (tuple or strings).

    ``label_index`` selects the label column (default: last); all remaining
    columns become features in order.  String fields are parsed as floats —
    which is exactly why the paper pushes recoding into the SQL side: by the
    time rows reach the ML system every field must already be numeric.
    """
    values = [float(v) for v in fields]
    if label_index < 0:
        label_index += len(values)
    label = values[label_index]
    features = np.array(
        values[:label_index] + values[label_index + 1 :], dtype=float
    )
    return LabeledPoint(label, features)
