"""The "big ML system" substrate (the paper's Spark MLlib stand-in).

Architecture mirrors what the paper assumes of any Hadoop-era ML system:

* an :class:`~repro.ml.system.MLSystem` runs *jobs*; a job is named by a
  command string plus arguments (exactly what the SQL-side streaming UDF
  hands the coordinator so it can launch the ML side, §3 step 2);
* each job ingests its input **only** through a Hadoop-style
  :class:`~repro.iofmt.inputformat.InputFormat` — one worker per InputSplit,
  scheduled next to the split's advertised location when possible — into an
  in-memory partitioned :class:`~repro.ml.dataset.Dataset` (the RDD);
* the algorithms (:mod:`repro.ml.algorithms`) then iterate over that
  in-memory dataset: SVM with SGD (the paper's evaluation workload),
  logistic regression, naive Bayes, decision trees, k-means, and linear
  regression — the classifier menu §5.1 motivates caching with.
"""

from repro.ml.dataset import Dataset, LabeledPoint
from repro.ml.job import IngestStats, MLJob
from repro.ml.system import MLJobResult, MLSystem

__all__ = [
    "Dataset",
    "IngestStats",
    "LabeledPoint",
    "MLJob",
    "MLJobResult",
    "MLSystem",
]
