"""From-scratch distributed-style ML algorithms over :class:`Dataset`.

Each trainer aggregates per-partition statistics or gradients and combines
them centrally — the MLlib execution shape — so the partition structure the
ingest produced is what the solvers actually iterate over.
"""

from repro.ml.algorithms.kmeans import KMeans, KMeansModel
from repro.ml.algorithms.linreg import LinearRegression, LinearRegressionModel
from repro.ml.algorithms.logistic import LogisticRegressionWithSGD, LogisticRegressionModel
from repro.ml.algorithms.naive_bayes import NaiveBayes, NaiveBayesModel
from repro.ml.algorithms.svm import SVMModel, SVMWithSGD
from repro.ml.algorithms.tree import DecisionTree, DecisionTreeModel

__all__ = [
    "DecisionTree",
    "DecisionTreeModel",
    "KMeans",
    "KMeansModel",
    "LinearRegression",
    "LinearRegressionModel",
    "LogisticRegressionModel",
    "LogisticRegressionWithSGD",
    "NaiveBayes",
    "NaiveBayesModel",
    "SVMModel",
    "SVMWithSGD",
]
