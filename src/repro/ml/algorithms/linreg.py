"""Linear regression: distributed normal equations (default) or SGD."""

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MLError
from repro.ml.dataset import Dataset


@dataclass(frozen=True)
class LinearRegressionModel:
    """A trained linear model."""

    weights: np.ndarray
    intercept: float

    def predict(self, features: np.ndarray) -> float:
        return float(features @ self.weights + self.intercept)

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        return X @ self.weights + self.intercept


class LinearRegression:
    """Static trainers.

    ``train`` solves the (ridge-regularized) normal equations from
    per-partition Gram/moment sums — one pass, embarrassingly parallel.
    ``train_sgd`` mirrors the SGD trainers of the other linear models.
    """

    @staticmethod
    def train(dataset: Dataset, reg_param: float = 0.0) -> LinearRegressionModel:
        parts = dataset.partition_arrays()
        if not parts:
            raise MLError("cannot fit linear regression on an empty dataset")
        dim = parts[0][0].shape[1]
        gram = np.zeros((dim + 1, dim + 1))
        moment = np.zeros(dim + 1)
        for X, y in parts:
            Xb = np.hstack([X, np.ones((len(X), 1))])
            gram += Xb.T @ Xb
            moment += Xb.T @ y
        if reg_param > 0.0:
            ridge = np.eye(dim + 1) * reg_param
            ridge[dim, dim] = 0.0  # never regularize the intercept
            gram += ridge
        solution, *_ = np.linalg.lstsq(gram, moment, rcond=None)
        return LinearRegressionModel(
            weights=solution[:dim], intercept=float(solution[dim])
        )

    @staticmethod
    def train_sgd(
        dataset: Dataset,
        iterations: int = 100,
        step: float = 0.1,
        reg_param: float = 0.0,
        checkpoint=None,  # TrainCheckpointer | None (§6 resumable training)
    ) -> LinearRegressionModel:
        parts = dataset.partition_arrays()
        if not parts:
            raise MLError("cannot fit linear regression on an empty dataset")
        dim = parts[0][0].shape[1]
        w = np.zeros(dim)
        b = 0.0
        start_t = 1
        if checkpoint is not None:
            restored = checkpoint.restore("linreg_sgd")
            if restored is not None:
                w = np.array(restored["weights"], dtype=float)
                b = float(restored["intercept"])
                start_t = int(restored["iteration"]) + 1
        for t in range(start_t, iterations + 1):
            grad_w = np.zeros(dim)
            grad_b = 0.0
            count = 0
            for X, y in parts:
                errors = X @ w + b - y
                grad_w += X.T @ errors
                grad_b += float(errors.sum())
                count += len(y)
            step_t = step / np.sqrt(t)
            w -= step_t * (grad_w / count + reg_param * w)
            b -= step_t * (grad_b / count)
            if checkpoint is not None:
                checkpoint.iteration_done(
                    t,
                    lambda: {
                        "algorithm": "linreg_sgd",
                        "iteration": t,
                        "weights": w.copy(),
                        "intercept": b,
                        "step": step / np.sqrt(t),
                    },
                )
        return LinearRegressionModel(weights=w, intercept=b)
