"""Lloyd's k-means with per-partition assignment/aggregation."""

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MLError
from repro.ml.dataset import Dataset


@dataclass(frozen=True)
class KMeansModel:
    """Trained centers plus final within-cluster cost."""

    centers: np.ndarray  # [k, dim]
    cost: float
    iterations_run: int

    def predict(self, features: np.ndarray) -> int:
        distances = np.linalg.norm(self.centers - np.asarray(features, float), axis=1)
        return int(np.argmin(distances))

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        distances = ((X[:, None, :] - self.centers[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(distances, axis=1)


def _kmeans_plus_plus_init(points: np.ndarray, k: int, rng) -> np.ndarray:
    """k-means++ seeding: each next center drawn proportionally to squared
    distance from the chosen ones (the sequential analogue of MLlib's
    k-means||), which avoids the empty/merged-cluster local minima of plain
    random initialization."""
    centers = np.empty((k, points.shape[1]))
    centers[0] = points[rng.integers(len(points))]
    d2 = ((points - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0.0:
            centers[i] = points[rng.integers(len(points))]
            continue
        choice = rng.random() * total
        index = int(np.searchsorted(np.cumsum(d2), choice))
        centers[i] = points[min(index, len(points) - 1)]
        d2 = np.minimum(d2, ((points - centers[i]) ** 2).sum(axis=1))
    return centers


class KMeans:
    """Static trainer over feature-vector records (np arrays or LabeledPoint)."""

    @staticmethod
    def train(
        dataset: Dataset,
        k: int,
        max_iterations: int = 20,
        tolerance: float = 1e-4,
        seed: int = 42,
        n_init: int = 1,
        checkpoint=None,  # TrainCheckpointer | None (§6 resumable training)
    ) -> KMeansModel:
        """Train; ``n_init > 1`` runs that many restarts with derived seeds
        and keeps the lowest-cost model (k-means++ reduces but does not
        eliminate initialization sensitivity).  Checkpointing applies only
        to single-init runs — restarts would alias each other's state under
        one job id."""
        if n_init > 1:
            best: KMeansModel | None = None
            for restart in range(n_init):
                candidate = KMeans.train(
                    dataset,
                    k,
                    max_iterations=max_iterations,
                    tolerance=tolerance,
                    seed=seed + 7919 * restart,
                    n_init=1,
                )
                if best is None or candidate.cost < best.cost:
                    best = candidate
            return best
        parts = []
        for partition in dataset.partitions():
            if not partition:
                continue
            rows = [
                r.features if hasattr(r, "features") else np.asarray(r, float)
                for r in partition
            ]
            parts.append(np.stack(rows).astype(float))
        if not parts:
            raise MLError("cannot cluster an empty dataset")
        total = sum(len(p) for p in parts)
        if total < k:
            raise MLError(f"need at least k={k} points, have {total}")

        rng = np.random.default_rng(seed)
        all_points = np.vstack(parts)
        centers = _kmeans_plus_plus_init(all_points, k, rng)

        iterations_run = 0
        cost = float("inf")
        converged = False
        if checkpoint is not None:
            restored = checkpoint.restore("kmeans")
            if restored is not None:
                centers = np.array(restored["centers"], dtype=float)
                cost = float(restored["cost"])
                iterations_run = int(restored["iteration"])
                converged = bool(restored.get("converged", False))
        while not converged and iterations_run < max_iterations:
            iterations_run += 1
            sums = np.zeros_like(centers)
            counts = np.zeros(k, dtype=int)
            new_cost = 0.0
            for X in parts:
                d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
                assignment = np.argmin(d2, axis=1)
                new_cost += float(d2[np.arange(len(X)), assignment].sum())
                for cluster in range(k):
                    mask = assignment == cluster
                    if mask.any():
                        sums[cluster] += X[mask].sum(axis=0)
                        counts[cluster] += int(mask.sum())
            moved = 0.0
            for cluster in range(k):
                if counts[cluster] == 0:
                    continue  # empty cluster keeps its center
                new_center = sums[cluster] / counts[cluster]
                moved = max(moved, float(np.linalg.norm(new_center - centers[cluster])))
                centers[cluster] = new_center
            cost = new_cost
            converged = moved < tolerance
            if checkpoint is not None:
                # The converged flag travels with the state: a run killed at
                # its final iteration resumes to the same early exit instead
                # of running one extra Lloyd step.
                checkpoint.iteration_done(
                    iterations_run,
                    lambda: {
                        "algorithm": "kmeans",
                        "iteration": iterations_run,
                        "centers": centers.copy(),
                        "cost": cost,
                        "converged": converged,
                        "rng_state": rng.bit_generator.state,
                    },
                )
        return KMeansModel(centers=centers, cost=cost, iterations_run=iterations_run)
