"""CART-style binary decision tree with histogram split finding.

Split candidates are per-feature quantile bin edges computed from
per-partition samples (the distributed-histogram trick MLlib's trees use),
so training cost stays linear in the data per depth level.
"""

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MLError
from repro.ml.dataset import Dataset


@dataclass
class _Node:
    prediction: float
    feature: int | None = None
    threshold: float | None = None
    left: "._Node | None" = None
    right: "._Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@dataclass(frozen=True)
class DecisionTreeModel:
    """A trained tree; predicts the majority class of the reached leaf."""

    root: _Node
    num_nodes: int
    depth: int

    def predict(self, features: np.ndarray) -> float:
        node = self.root
        while not node.is_leaf:
            node = node.left if features[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        return np.array([self.predict(row) for row in X])


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class DecisionTree:
    """Static trainer for binary classification (labels 0/1)."""

    @staticmethod
    def train(
        dataset: Dataset,
        max_depth: int = 5,
        min_samples_split: int = 8,
        max_bins: int = 32,
    ) -> DecisionTreeModel:
        parts = dataset.partition_arrays()
        if not parts:
            raise MLError("cannot train a tree on an empty dataset")
        X = np.vstack([p[0] for p in parts])
        y = np.concatenate([p[1] for p in parts]).astype(int)
        if set(np.unique(y)) - {0, 1}:
            raise MLError("DecisionTree supports binary 0/1 labels only")

        candidates = DecisionTree._bin_edges(X, max_bins)
        counter = [0]

        def grow(idx: np.ndarray, depth: int) -> _Node:
            counter[0] += 1
            labels = y[idx]
            ones = int(labels.sum())
            prediction = 1.0 if ones * 2 >= len(labels) else 0.0
            node = _Node(prediction=prediction)
            if (
                depth >= max_depth
                or len(idx) < min_samples_split
                or ones == 0
                or ones == len(labels)
            ):
                return node
            best = DecisionTree._best_split(X[idx], labels, candidates)
            if best is None:
                return node
            feature, threshold = best
            mask = X[idx, feature] <= threshold
            if not mask.any() or mask.all():
                return node
            node.feature = feature
            node.threshold = threshold
            node.left = grow(idx[mask], depth + 1)
            node.right = grow(idx[~mask], depth + 1)
            return node

        root = grow(np.arange(len(y)), 0)

        def measure_depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(measure_depth(node.left), measure_depth(node.right))

        return DecisionTreeModel(
            root=root, num_nodes=counter[0], depth=measure_depth(root)
        )

    @staticmethod
    def _bin_edges(X: np.ndarray, max_bins: int) -> list[np.ndarray]:
        edges = []
        for j in range(X.shape[1]):
            values = np.unique(X[:, j])
            if len(values) <= 1:
                edges.append(np.empty(0))
            elif len(values) <= max_bins:
                edges.append((values[:-1] + values[1:]) / 2.0)
            else:
                quantiles = np.quantile(
                    X[:, j], np.linspace(0, 1, max_bins + 1)[1:-1]
                )
                edges.append(np.unique(quantiles))
        return edges

    @staticmethod
    def _best_split(
        X: np.ndarray, labels: np.ndarray, candidates: list[np.ndarray]
    ) -> tuple[int, float] | None:
        parent_counts = np.array(
            [len(labels) - labels.sum(), labels.sum()], dtype=float
        )
        parent_gini = _gini(parent_counts)
        best_gain = 1e-9
        best: tuple[int, float] | None = None
        total = len(labels)
        for feature, edges in enumerate(candidates):
            column = X[:, feature]
            for threshold in edges:
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == total:
                    continue
                ones_left = int(labels[mask].sum())
                left_counts = np.array([n_left - ones_left, ones_left], dtype=float)
                ones_right = int(labels.sum()) - ones_left
                n_right = total - n_left
                right_counts = np.array(
                    [n_right - ones_right, ones_right], dtype=float
                )
                gain = parent_gini - (
                    n_left / total * _gini(left_counts)
                    + n_right / total * _gini(right_counts)
                )
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best
