"""Linear SVM trained with distributed minibatch SGD (MLlib's SVMWithSGD).

The paper's end-to-end experiment feeds the transformed cart data to
``SVMWithSGD`` for 10 iterations; this is that algorithm: hinge loss with L2
regularization, one gradient aggregation across partitions per iteration,
step size decaying as step/sqrt(t).  Labels are 0/1 on the outside and
mapped to ±1 internally, as in MLlib.
"""

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MLError
from repro.ml.dataset import Dataset


@dataclass(frozen=True)
class SVMModel:
    """A trained linear SVM."""

    weights: np.ndarray
    intercept: float

    def decision(self, features: np.ndarray) -> float:
        """Signed margin for one example."""
        return float(features @ self.weights + self.intercept)

    def predict(self, features: np.ndarray) -> int:
        """Predicted class in {0, 1}."""
        return 1 if self.decision(features) >= 0.0 else 0

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        """Vectorized prediction over a matrix of examples."""
        return (X @ self.weights + self.intercept >= 0.0).astype(int)


class SVMWithSGD:
    """Static trainer, MLlib-style."""

    @staticmethod
    def train(
        dataset: Dataset,
        iterations: int = 10,
        step: float = 1.0,
        reg_param: float = 0.01,
        minibatch_fraction: float = 1.0,
        seed: int = 42,
        fit_intercept: bool = True,
        checkpoint=None,  # TrainCheckpointer | None (§6 resumable training)
    ) -> SVMModel:
        """Train on a Dataset of LabeledPoint with labels in {0, 1}."""
        parts = dataset.partition_arrays()
        if not parts:
            raise MLError("cannot train SVM on an empty dataset")
        dims = {X.shape[1] for X, _y in parts}
        if len(dims) != 1:
            raise MLError(f"inconsistent feature dimensions across partitions: {dims}")
        dim = dims.pop()
        total = sum(len(y) for _X, y in parts)
        signed = [(X, np.where(y > 0.5, 1.0, -1.0)) for X, y in parts]
        rng = np.random.default_rng(seed)

        w = np.zeros(dim)
        b = 0.0
        start_t = 1
        if checkpoint is not None:
            restored = checkpoint.restore("svm")
            if restored is not None:
                w = np.array(restored["weights"], dtype=float)
                b = float(restored["intercept"])
                rng.bit_generator.state = restored["rng_state"]
                start_t = int(restored["iteration"]) + 1
        for t in range(start_t, iterations + 1):
            grad_w = np.zeros(dim)
            grad_b = 0.0
            batch_size = 0
            for X, y in signed:
                if minibatch_fraction < 1.0:
                    mask = rng.random(len(y)) < minibatch_fraction
                    Xb, yb = X[mask], y[mask]
                else:
                    Xb, yb = X, y
                if len(yb) == 0:
                    continue
                margins = yb * (Xb @ w + b)
                violated = margins < 1.0
                if violated.any():
                    grad_w += -(Xb[violated].T @ yb[violated])
                    grad_b += -float(yb[violated].sum())
                batch_size += len(yb)
            if batch_size:
                step_t = step / np.sqrt(t)
                w -= step_t * (grad_w / batch_size + reg_param * w)
                if fit_intercept:
                    b -= step_t * (grad_b / batch_size)
            if checkpoint is not None:
                checkpoint.iteration_done(
                    t,
                    lambda: {
                        "algorithm": "svm",
                        "iteration": t,
                        "weights": w.copy(),
                        "intercept": b,
                        "rng_state": rng.bit_generator.state,
                        "step": step / np.sqrt(t),
                    },
                )
        if total == 0:
            raise MLError("cannot train SVM on an empty dataset")
        return SVMModel(weights=w, intercept=b)
