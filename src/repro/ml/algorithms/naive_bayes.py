"""Multinomial naive Bayes (MLlib's NaiveBayes) for non-negative features.

Works naturally on the dummy-coded indicator features §2.2 produces — which
is why the paper's analyst can "run a number of classification algorithms
... on a particular dataset" straight off the cached transformed result.
"""

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MLError
from repro.ml.dataset import Dataset


@dataclass(frozen=True)
class NaiveBayesModel:
    """Class log-priors plus per-class feature log-probabilities."""

    labels: np.ndarray  # distinct class labels, sorted
    log_prior: np.ndarray  # [num_classes]
    log_likelihood: np.ndarray  # [num_classes, num_features]

    def predict(self, features: np.ndarray) -> float:
        scores = self.log_prior + self.log_likelihood @ np.asarray(features, float)
        return float(self.labels[int(np.argmax(scores))])

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        scores = self.log_prior + X @ self.log_likelihood.T
        return self.labels[np.argmax(scores, axis=1)]


class NaiveBayes:
    """Static trainer; ``smoothing`` is the Laplace/Lidstone lambda."""

    @staticmethod
    def train(dataset: Dataset, smoothing: float = 1.0) -> NaiveBayesModel:
        parts = dataset.partition_arrays()
        if not parts:
            raise MLError("cannot train naive Bayes on an empty dataset")
        # Per-partition sufficient statistics, then a central combine —
        # exactly the aggregate() MLlib does.
        class_counts: dict[float, int] = {}
        feature_sums: dict[float, np.ndarray] = {}
        dim = parts[0][0].shape[1]
        for X, y in parts:
            if (X < 0).any():
                raise MLError("multinomial naive Bayes requires non-negative features")
            for label in np.unique(y):
                mask = y == label
                class_counts[label] = class_counts.get(label, 0) + int(mask.sum())
                sums = feature_sums.get(label)
                contribution = X[mask].sum(axis=0)
                feature_sums[label] = (
                    contribution if sums is None else sums + contribution
                )
        labels = np.array(sorted(class_counts))
        total = sum(class_counts.values())
        log_prior = np.log(
            np.array([class_counts[l] for l in labels], dtype=float) / total
        )
        log_likelihood = np.zeros((len(labels), dim))
        for i, label in enumerate(labels):
            sums = feature_sums[label] + smoothing
            log_likelihood[i] = np.log(sums / sums.sum())
        return NaiveBayesModel(
            labels=labels, log_prior=log_prior, log_likelihood=log_likelihood
        )
