"""Logistic regression with distributed minibatch SGD."""

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MLError
from repro.ml.dataset import Dataset


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() from overflowing on confident examples.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


@dataclass(frozen=True)
class LogisticRegressionModel:
    """A trained binary logistic model (labels 0/1)."""

    weights: np.ndarray
    intercept: float

    def predict_probability(self, features: np.ndarray) -> float:
        """P(label=1 | features)."""
        return float(_sigmoid(np.asarray(features @ self.weights + self.intercept)))

    def predict(self, features: np.ndarray) -> int:
        return 1 if self.predict_probability(features) >= 0.5 else 0

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        return (_sigmoid(X @ self.weights + self.intercept) >= 0.5).astype(int)

    def score_many(self, X: np.ndarray) -> np.ndarray:
        """Probabilities for a matrix of examples (for AUC computation)."""
        return _sigmoid(X @ self.weights + self.intercept)


class LogisticRegressionWithSGD:
    """Static trainer mirroring MLlib's LogisticRegressionWithSGD."""

    @staticmethod
    def train(
        dataset: Dataset,
        iterations: int = 50,
        step: float = 1.0,
        reg_param: float = 0.0,
        minibatch_fraction: float = 1.0,
        seed: int = 42,
        checkpoint=None,  # TrainCheckpointer | None (§6 resumable training)
    ) -> LogisticRegressionModel:
        """Train on LabeledPoint records with labels in {0, 1}."""
        parts = dataset.partition_arrays()
        if not parts:
            raise MLError("cannot train logistic regression on an empty dataset")
        dim = parts[0][0].shape[1]
        rng = np.random.default_rng(seed)

        w = np.zeros(dim)
        b = 0.0
        start_t = 1
        if checkpoint is not None:
            restored = checkpoint.restore("logistic")
            if restored is not None:
                w = np.array(restored["weights"], dtype=float)
                b = float(restored["intercept"])
                rng.bit_generator.state = restored["rng_state"]
                start_t = int(restored["iteration"]) + 1
        for t in range(start_t, iterations + 1):
            grad_w = np.zeros(dim)
            grad_b = 0.0
            batch_size = 0
            for X, y in parts:
                if minibatch_fraction < 1.0:
                    mask = rng.random(len(y)) < minibatch_fraction
                    Xb, yb = X[mask], y[mask]
                else:
                    Xb, yb = X, y
                if len(yb) == 0:
                    continue
                errors = _sigmoid(Xb @ w + b) - yb
                grad_w += Xb.T @ errors
                grad_b += float(errors.sum())
                batch_size += len(yb)
            if batch_size:
                step_t = step / np.sqrt(t)
                w -= step_t * (grad_w / batch_size + reg_param * w)
                b -= step_t * (grad_b / batch_size)
            if checkpoint is not None:
                checkpoint.iteration_done(
                    t,
                    lambda: {
                        "algorithm": "logistic",
                        "iteration": t,
                        "weights": w.copy(),
                        "intercept": b,
                        "rng_state": rng.bit_generator.state,
                        "step": step / np.sqrt(t),
                    },
                )
        return LogisticRegressionModel(weights=w, intercept=b)
