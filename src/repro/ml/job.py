"""ML job ingestion: splits -> parallel readers -> in-memory Dataset."""

import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.columnar.batch import ColumnBatch
from repro.common.errors import (
    DeadlineExceeded,
    IngestError,
    MLError,
    SessionCancelled,
    WorkerFailedError,
)
from repro.iofmt.inputformat import InputFormat, JobConf
from repro.ml.dataset import ArrayDataset, Dataset, points_to_arrays
from repro.sim.clock import WALL


@dataclass
class IngestStats:
    """What building the RDD cost — the paper's "input for ml" stage."""

    records: int = 0
    bytes: int = 0
    num_splits: int = 0
    local_splits: int = 0
    wall_seconds: float = 0.0


@dataclass
class MLJob:
    """One ingestion job: an InputFormat consumed by parallel workers.

    ``num_workers`` is the requested parallelism; formats may dictate their
    own split count (the streaming format returns exactly the splits the
    coordinator matched).  Each split is consumed by exactly one worker, and
    the scheduler places the worker on the split's advertised location when
    that node exists — the best-effort locality of §3.
    """

    cluster: Cluster
    input_format: InputFormat
    conf: JobConf
    num_workers: int
    record_parser: Callable | None = None
    #: columnar kernel: ColumnBatch -> (X, y).  When set, batches received
    #: from a columnar stream become float64 arrays directly and ingest()
    #: returns an ArrayDataset — no per-row LabeledPoint construction.
    batch_parser: Callable | None = None

    def ingest(self) -> tuple[Dataset, IngestStats]:
        """Read all splits into a Dataset (one partition per split)."""
        started = time.perf_counter()
        splits = self.input_format.get_splits(self.conf, self.num_workers)
        if not splits:
            return Dataset([[]]), IngestStats(wall_seconds=0.0)
        stats = IngestStats(num_splits=len(splits))
        known_ips = {n.ip for n in self.cluster.nodes}
        parser = self.record_parser
        batch_parser = self.batch_parser
        # Multi-tenant deployments share the fixed ML worker pool: each split
        # drain holds one fair lease from the coordinator's scheduler while
        # it reads.  Sound without deadlock because SQL-side senders never
        # block (full buffers spill) — a reader waiting for a slot only
        # delays its own stream.  worker_pool is None on seed deployments.
        coordinator = self.conf.get_object("coordinator")
        worker_pool = getattr(coordinator, "worker_pool", None)
        session_key = self.conf.get("stream.session") or "local"
        # End-to-end budget: the slot wait below derives its timeout from it
        # (and a cancel wakes the waiter), and each split drain re-checks it
        # at reader-open so an already-expired session never starts reading.
        budget = self.conf.get_object("budget")
        # Injected clock (virtual under the chaos harness): reader threads
        # register as clock-managed so virtual time only advances while every
        # drain is parked in a clock wait.
        clock = (
            self.conf.get_object("clock")
            or getattr(coordinator, "clock", None)
            or WALL
        )

        def consume(split_id: int, split) -> tuple[list, list, int, bool]:
            with clock.managed(f"ingest-split-{session_key}-{split_id}",
                               expected=True):
                if budget is not None:
                    budget.check("ingest split open")
                if worker_pool is not None:
                    with worker_pool.lease(session_key, budget=budget):
                        return _consume(split)
                return _consume(split)

        def _consume(split) -> tuple[list, list, int, bool]:
            locations = split.locations()
            is_local = any(ip in known_ips for ip in locations)
            node_ip = next((ip for ip in locations if ip in known_ips), None)
            conf = JobConf(dict(self.conf.props), **self.conf.objects)
            if node_ip is not None:
                conf.set("client.ip", node_ip)
            records: list = []
            arrays: list = []  # (X, y) pairs from columnar frames
            with self.input_format.create_record_reader(split, conf) as reader:
                for record in reader:
                    if isinstance(record, ColumnBatch):
                        # A columnar frame that survived the wire intact:
                        # straight to arrays when a batch kernel exists,
                        # else pivot once and parse like any other rows.
                        if batch_parser is not None:
                            arrays.append(batch_parser(record))
                        elif parser is not None:
                            records.extend(parser(r) for r in record.to_rows())
                        else:
                            records.extend(record.to_rows())
                    else:
                        records.append(parser(record) if parser else record)
                # Streaming readers count actual received bytes; file readers
                # fall back to the split's nominal length.
                nbytes = getattr(reader, "bytes_read", None)
            if nbytes is None:
                nbytes = split.length()
            return records, arrays, nbytes, is_local

        # Typed per-split error handling: every split's outcome is collected
        # so a failure names exactly which split ids died (and, for worker
        # crashes, which worker) — the §6 recovery ladder needs that to know
        # the fault happened at *ingest*, before the data was fully delivered.
        results: list = [None] * len(splits)
        failures: dict[int, BaseException] = {}
        clock.expect_threads(len(splits))
        with ThreadPoolExecutor(max_workers=max(len(splits), 1)) as pool:
            futures = {
                pool.submit(consume, i, split): i for i, split in enumerate(splits)
            }
            # The gather blocks in Future.result(), outside any clock wait:
            # step out of the managed set so the virtual clock can advance
            # while the reader threads do the (clock-visible) waiting.
            with clock.unmanaged():
                for future, split_id in futures.items():
                    try:
                        results[split_id] = future.result()
                    except (WorkerFailedError, MLError) as exc:
                        failures[split_id] = exc
                    except Exception as exc:  # non-library faults surface typed
                        failures[split_id] = exc
        if failures:
            failed_ids = tuple(sorted(failures))
            # Budget outcomes surface typed, never wrapped in IngestError:
            # the recovery ladder must see them as non-retryable, and a
            # re-ingest of an expired session would just expire again.
            for i in failed_ids:
                if isinstance(failures[i], (DeadlineExceeded, SessionCancelled)):
                    raise failures[i]
            first = failures[failed_ids[0]]
            detail = "; ".join(
                f"split {i}: {failures[i]}" for i in failed_ids
            )
            raise IngestError(
                f"ingest failed for splits {list(failed_ids)}: {detail}",
                failed_split_ids=failed_ids,
            ) from first

        columnar = any(arrays for _, arrays, _, _ in results)
        partitions: list[list] = []
        array_parts: list[tuple] = []
        for records, arrays, nbytes, is_local in results:
            if columnar:
                # Splits that saw only row frames (or none) still join the
                # ArrayDataset: their parsed LabeledPoints stack into one
                # (X, y) pair so the partition layout stays one-per-split.
                pairs = list(arrays)
                if records:
                    pairs.append(points_to_arrays(records))
                array_parts.append(_merge_pairs(pairs))
                stats.records += len(array_parts[-1][1])
            else:
                partitions.append(records)
                stats.records += len(records)
            stats.bytes += nbytes
            if is_local:
                stats.local_splits += 1
        self.cluster.ledger.add("ml.ingest", stats.bytes)
        stats.wall_seconds = time.perf_counter() - started
        if columnar:
            return ArrayDataset(array_parts), stats
        return Dataset(partitions), stats


def _merge_pairs(pairs: list[tuple]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate one split's (X, y) pairs into a single partition pair."""
    pairs = [(X, y) for X, y in pairs if len(y)]
    if not pairs:
        return np.empty((0, 0)), np.empty((0,))
    if len(pairs) == 1:
        X, y = pairs[0]
        return np.asarray(X, dtype=float), np.asarray(y, dtype=float)
    return (
        np.concatenate([np.asarray(X, dtype=float) for X, _ in pairs]),
        np.concatenate([np.asarray(y, dtype=float) for _, y in pairs]),
    )
