"""Model validation utilities: splits and cross-validation.

The §5.1 workflow — "run a number of classification algorithms ... to
compare the quality of different classifiers on a particular dataset" —
needs held-out evaluation to be meaningful; these helpers provide it over
the partitioned :class:`~repro.ml.dataset.Dataset` without breaking its
distribution structure.
"""

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.common.errors import MLError
from repro.ml import metrics
from repro.ml.dataset import Dataset


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.25, seed: int = 42
) -> tuple[Dataset, Dataset]:
    """Bernoulli split per record, preserving the partition structure."""
    if not 0.0 < test_fraction < 1.0:
        raise MLError(f"test_fraction must be in (0,1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    train_parts: list[list] = []
    test_parts: list[list] = []
    for partition in dataset.partitions():
        mask = rng.random(len(partition)) < test_fraction
        train_parts.append([r for r, m in zip(partition, mask) if not m])
        test_parts.append([r for r, m in zip(partition, mask) if m])
    return Dataset(train_parts), Dataset(test_parts)


def k_folds(dataset: Dataset, k: int, seed: int = 42) -> list[tuple[Dataset, Dataset]]:
    """K (train, validation) pairs; every record lands in exactly one
    validation fold."""
    if k < 2:
        raise MLError("k-fold needs k >= 2")
    rng = np.random.default_rng(seed)
    assignments = [rng.integers(0, k, size=len(p)) for p in dataset.partitions()]
    folds = []
    for fold in range(k):
        train_parts = [
            [r for r, a in zip(p, assignment) if a != fold]
            for p, assignment in zip(dataset.partitions(), assignments)
        ]
        validation_parts = [
            [r for r, a in zip(p, assignment) if a == fold]
            for p, assignment in zip(dataset.partitions(), assignments)
        ]
        folds.append((Dataset(train_parts), Dataset(validation_parts)))
    return folds


@dataclass(frozen=True)
class EvaluationResult:
    """Held-out classification quality of one trained model."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    test_records: int


def evaluate_classifier(model, test: Dataset) -> EvaluationResult:
    """Score a model exposing ``predict_many`` on a labeled test set."""
    X, y = test.to_arrays()
    if len(y) == 0:
        raise MLError("cannot evaluate on an empty test set")
    predictions = np.asarray(model.predict_many(X))
    return EvaluationResult(
        accuracy=metrics.accuracy(y, predictions),
        precision=metrics.precision(y, predictions),
        recall=metrics.recall(y, predictions),
        f1=metrics.f1_score(y, predictions),
        test_records=len(y),
    )


def cross_validate(
    dataset: Dataset,
    trainer: Callable[[Dataset], object],
    k: int = 5,
    seed: int = 42,
) -> list[EvaluationResult]:
    """Train+evaluate over k folds; returns the per-fold results."""
    results = []
    for train, validation in k_folds(dataset, k, seed):
        if train.count() == 0 or validation.count() == 0:
            raise MLError(f"fold too small: {train.count()}/{validation.count()}")
        model = trainer(train)
        results.append(evaluate_classifier(model, validation))
    return results


def mean_accuracy(results: list[EvaluationResult]) -> float:
    """Average accuracy across folds."""
    if not results:
        raise MLError("no evaluation results")
    return float(np.mean([r.accuracy for r in results]))
