"""Declarative description of the transformation a pipeline should apply."""

from dataclasses import dataclass


@dataclass(frozen=True)
class TransformSpec:
    """Which columns get which treatment before handover to ML.

    * ``recode`` — categorical columns mapped to consecutive integers (§2.1);
    * ``dummy`` — categorical columns additionally expanded one-hot (§2.2);
      they are recoded first (dummy coding assumes recoded input);
    * ``effect`` — categorical columns expanded into K-1 effect-coded
      contrast columns (§2.2's "less common transformations");
    * ``orthogonal`` — categorical columns expanded into K-1 orthogonal
      polynomial contrast columns;
    * ``label`` — the target column for supervised learning (recoded if it
      is categorical, i.e. listed in ``recode``);
    * numeric feature columns pass through untouched.

    A column may carry at most one expansion treatment (dummy, effect, or
    orthogonal); expansions imply recoding.

    ``on_unseen`` is the dirty-data policy for recode-time values phase 1
    never observed (data mutated between passes, or a stale cached map):

    * ``"null"`` (default) — recode to NULL, matching the join formulation's
      inner-join-miss semantics;
    * ``"error"`` — raise :class:`~repro.common.errors.TransformError`
      naming the column and value;
    * ``"skip_row"`` — drop the offending row from the transformed output.
    """

    recode: tuple[str, ...] = ()
    dummy: tuple[str, ...] = ()
    effect: tuple[str, ...] = ()
    orthogonal: tuple[str, ...] = ()
    label: str | None = None
    on_unseen: str = "null"

    def __post_init__(self):
        if self.on_unseen not in ("null", "error", "skip_row"):
            raise ValueError(
                f"on_unseen must be 'null', 'error', or 'skip_row', "
                f"got {self.on_unseen!r}"
            )
        for field_name in ("recode", "dummy", "effect", "orthogonal"):
            values = [c.lower() for c in getattr(self, field_name)]
            if len(set(values)) != len(values):
                raise ValueError(
                    f"duplicate {field_name} columns: {getattr(self, field_name)}"
                )
        expansions = (
            [c.lower() for c in self.dummy]
            + [c.lower() for c in self.effect]
            + [c.lower() for c in self.orthogonal]
        )
        if len(set(expansions)) != len(expansions):
            raise ValueError(
                "a column may carry at most one of dummy/effect/orthogonal"
            )
        if self.label is not None and self.label.lower() in set(expansions):
            raise ValueError(f"label column {self.label!r} cannot be expanded away")

    @property
    def all_recoded(self) -> tuple[str, ...]:
        """Every column needing a recode map: recode plus all expansions."""
        seen: set[str] = set()
        ordered: list[str] = []
        for group in (self.recode, self.dummy, self.effect, self.orthogonal):
            for column in group:
                if column.lower() not in seen:
                    seen.add(column.lower())
                    ordered.append(column)
        return tuple(ordered)

    def fingerprint(self) -> tuple:
        """Hashable identity for cache keys."""
        return (
            tuple(c.lower() for c in self.recode),
            tuple(c.lower() for c in self.dummy),
            tuple(c.lower() for c in self.effect),
            tuple(c.lower() for c in self.orthogonal),
            self.label.lower() if self.label else None,
            self.on_unseen,
        )
