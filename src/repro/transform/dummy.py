"""Dummy coding / one-hot encoding (§2.2) as a single-pass table UDF."""

from collections.abc import Iterable

from repro.common.errors import ExecutionError
from repro.sql.types import Column, DataType, Schema
from repro.sql.udf import TableUDF, UdfContext
from repro.transform.recode import RecodeMap
from repro.transform.service import TransformService


def indicator_column_name(column: str, value: str) -> str:
    """Name of the indicator column for one categorical value.

    The paper's Figure 1(c) names them after the values ("female", "male");
    we prefix with the source column to keep names collision-free:
    ``gender_F``, ``gender_M``.  Non-identifier characters are mangled.
    """
    safe = "".join(ch if ch.isalnum() else "_" for ch in str(value))
    return f"{column}_{safe}"


class DummyCodeUDF(TableUDF):
    """``TABLE(dummy_code(input, 'map_handle', 'gender', ...))``.

    Expects the listed columns to be *already recoded* (integers 1..K, as
    §2.2 assumes).  Each such column is replaced in place by K binary
    columns; the i-th is 1 when the recoded value equals i.  Cardinalities
    come from the recode map built during phase 1 — "already obtained during
    recoding phase", as the paper puts it — so this is one parallel scan
    with no extra coordination.

    A NULL recoded value produces all-zero indicators.
    """

    name = "dummy_code"

    def __init__(self, transforms: TransformService):
        self._transforms = transforms

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        handle, columns = self._parse_args(args)
        recode_map: RecodeMap = self._transforms.get(handle)
        targets = {c.lower() for c in columns}
        out: list[Column] = []
        for column in input_schema:
            if column.name.lower() in targets:
                # An empty mapping (no rows survived the preparation query)
                # expands to zero indicator columns.
                values = (
                    recode_map.values_in_code_order(column.name)
                    if recode_map.mapping_or_empty(column.name)
                    else []
                )
                for value in values:
                    out.append(
                        Column(
                            indicator_column_name(column.name, value),
                            DataType.INT,
                            column.qualifier,
                        )
                    )
            else:
                out.append(column)
        return Schema(out)

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        handle, columns = self._parse_args(args)
        recode_map: RecodeMap = self._transforms.get(handle)
        targets = {c.lower() for c in columns}
        layout: list[tuple[str, int]] = []  # ("copy", idx) or ("expand:K", idx)
        for i, column in enumerate(input_schema):
            if column.name.lower() in targets:
                k = len(recode_map.mapping_or_empty(column.name))
                layout.append((f"expand:{k}", i))
            else:
                layout.append(("copy", i))
        for row in rows:
            out: list = []
            for kind, index in layout:
                if kind == "copy":
                    out.append(row[index])
                else:
                    k = int(kind.split(":", 1)[1])
                    code = row[index]
                    indicators = [0] * k
                    if code is not None:
                        if not isinstance(code, int) or not (1 <= code <= k):
                            raise ExecutionError(
                                f"dummy_code expects recoded values in 1..{k}, "
                                f"got {code!r} (recode the column first)"
                            )
                        indicators[code - 1] = 1
                    out.extend(indicators)
            yield tuple(out)

    def process_batch(self, batch, input_schema: Schema, args: tuple, ctx: UdfContext):
        """Columnar one-hot: K equality comparisons over the whole code
        array per expanded column, no per-row indicator lists."""
        import numpy as np

        from repro.columnar.batch import ColumnBatch, ColumnVector

        handle, columns = self._parse_args(args)
        recode_map: RecodeMap = self._transforms.get(handle)
        targets = {c.lower() for c in columns}
        for i, column in enumerate(input_schema):
            if column.name.lower() in targets and batch.columns[i].dtype not in (
                DataType.INT,
                DataType.BIGINT,
            ):
                return None  # not recoded integers: the row path raises properly
        out_vectors: list[ColumnVector] = []
        n = batch.num_rows
        for i, column in enumerate(input_schema):
            vector = batch.columns[i]
            if column.name.lower() not in targets:
                out_vectors.append(vector)
                continue
            k = len(recode_map.mapping_or_empty(column.name))
            bad = vector.valid & ((vector.data < 1) | (vector.data > k))
            if bad.any():
                code = int(vector.data[np.argmax(bad)])
                raise ExecutionError(
                    f"dummy_code expects recoded values in 1..{k}, "
                    f"got {code!r} (recode the column first)"
                )
            ones = np.ones(n, dtype=np.bool_)
            for value in range(1, k + 1):
                # NULL input produces all-zero (non-NULL) indicators.
                indicator = (vector.valid & (vector.data == value)).astype(np.int64)
                out_vectors.append(ColumnVector(DataType.INT, indicator, ones))
        out_schema = self.output_schema(input_schema, args)
        return ColumnBatch.from_columns(out_schema, out_vectors, n)

    @staticmethod
    def _parse_args(args: tuple) -> tuple[str, list[str]]:
        if len(args) < 2:
            raise ExecutionError("dummy_code needs a map handle and >=1 column")
        return str(args[0]), [str(a) for a in args[1:]]
