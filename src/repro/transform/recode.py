"""Recoding of categorical variables (§2.1): two-phase, distributed.

Phase 1 — each worker computes its *local* distinct ``(column, value)``
pairs in one scan over its partition (:class:`LocalDistinctUDF`), the engine
globalizes them with ``SELECT DISTINCT``, and a deterministic assignment
turns them into consecutive integers starting at 1 (what SystemML-style
consumers require; sorted order keeps runs reproducible).

Phase 2 — apply the map.  Two interchangeable implementations:

* the paper's SQL formulation (:func:`recode_join_sql`): register the map as
  a table ``M(colName, colVal, recodeVal)`` and join once per recoded
  column;
* the broadcast-map :class:`RecodeUDF`: one pipelined pass per partition,
  resolving the map through the :class:`~repro.transform.service.TransformService`.
"""

from collections.abc import Iterable
from dataclasses import dataclass

from repro.common.errors import ExecutionError, TransformError
from repro.sql.types import Column, DataType, Schema
from repro.sql.udf import TableUDF, UdfContext
from repro.transform.service import TransformService


@dataclass(frozen=True)
class RecodeMap:
    """Per-column value -> consecutive-integer code mappings."""

    mappings: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]

    @staticmethod
    def from_distinct_rows(rows: Iterable[tuple]) -> "RecodeMap":
        """Build from global ``(colName, colVal)`` rows (phase-1 output).

        Values are sorted per column and assigned 1..K — the deterministic
        stand-in for the paper's recode-value-assignment UDF.
        """
        per_column: dict[str, set[str]] = {}
        for col_name, col_val in rows:
            if col_val is None:
                continue
            per_column.setdefault(col_name.lower(), set()).add(col_val)
        mappings = []
        for col_name in sorted(per_column):
            values = sorted(per_column[col_name])
            mappings.append(
                (col_name, tuple((v, i + 1) for i, v in enumerate(values)))
            )
        return RecodeMap(tuple(mappings))

    def columns(self) -> list[str]:
        return [name for name, _ in self.mappings]

    def mapping(self, column: str) -> dict[str, int]:
        for name, pairs in self.mappings:
            if name == column.lower():
                return dict(pairs)
        raise TransformError(
            f"no recode mapping for column {column!r}", column=column
        )

    def mapping_or_empty(self, column: str) -> dict[str, int]:
        """Like :meth:`mapping`, but an all-NULL column (which phase 1 never
        observed) yields an empty mapping instead of an error — every value
        recodes to NULL, which is the only sound answer."""
        try:
            return self.mapping(column)
        except TransformError:
            return {}

    def cardinality(self, column: str) -> int:
        return len(self.mapping(column))

    def values_in_code_order(self, column: str) -> list[str]:
        mapping = self.mapping(column)
        return [v for v, _c in sorted(mapping.items(), key=lambda kv: kv[1])]

    def code(self, column: str, value) -> int | None:
        """Code for a value; None for NULL or unseen values."""
        if value is None:
            return None
        return self.mapping(column).get(value)

    def as_table_rows(self) -> list[tuple]:
        """``(colName, colVal, recodeVal)`` rows, for the join formulation."""
        rows = []
        for name, pairs in self.mappings:
            for value, code in pairs:
                rows.append((name, value, code))
        return rows

    @staticmethod
    def table_schema() -> Schema:
        """Schema of :meth:`as_table_rows`."""
        return Schema.of(
            ("colName", DataType.VARCHAR),
            ("colVal", DataType.VARCHAR),
            ("recodeVal", DataType.INT),
        )


class LocalDistinctUDF(TableUDF):
    """Phase-1 table UDF: local distincts of every listed column, one scan.

    ``TABLE(local_distinct(input, 'gender', 'abandoned'))`` yields rows
    ``(colName, colVal)`` — the paper's example output
    ``{('gender','F'), ('gender','M'), ('abandoned','Yes')}``.  One scan
    covers *all* columns; the paper contrasts this with the one-SQL-query-
    per-column alternative that would rescan the data K times.
    """

    name = "local_distinct"

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        self._column_indexes(input_schema, args)  # validate early
        return Schema.of(
            ("colName", DataType.VARCHAR), ("colVal", DataType.VARCHAR)
        )

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        indexes = self._column_indexes(input_schema, args)
        seen: set[tuple[str, str]] = set()
        for row in rows:
            for col_name, index in indexes:
                value = row[index]
                if value is None:
                    continue
                seen.add((col_name, value))
        return sorted(seen)

    def process_batch(self, batch, input_schema: Schema, args: tuple, ctx: UdfContext):
        """Columnar phase 1: the local distincts of a dictionary-encoded
        column are just its *used* dictionary words — one ``np.unique`` over
        the code array instead of a per-row set insert."""
        import numpy as np

        from repro.sql.types import DataType

        indexes = self._column_indexes(input_schema, args)
        seen: set[tuple[str, str]] = set()
        for col_name, index in indexes:
            vector = batch.columns[index]
            if vector.dtype is DataType.VARCHAR and vector.dictionary is not None:
                words = vector.dictionary
                for code in np.unique(vector.data[vector.valid]).tolist():
                    seen.add((col_name, words[code]))
            else:
                for value in vector.to_pylist():
                    if value is not None:
                        seen.add((col_name, value))
        return sorted(seen)

    @staticmethod
    def _column_indexes(schema: Schema, args: tuple) -> list[tuple[str, int]]:
        if not args:
            raise ExecutionError("local_distinct needs at least one column name")
        return [(str(a).lower(), schema.resolve(None, str(a))) for a in args]


class RecodeUDF(TableUDF):
    """Phase-2 table UDF: map listed categorical columns to their codes.

    ``TABLE(recode(input, 'map_handle', 'gender', 'abandoned'))`` replaces
    each listed column's string value with its integer code, leaving other
    columns untouched.  NULL input always recodes to NULL.

    A value phase 1 never observed (dirty data: the table mutated between
    passes, or a cached map went stale) is handled per the optional
    ``'on_unseen=<policy>'`` argument — ``null`` (default, matches the join
    formulation's inner-join-miss semantics), ``error`` (raise
    :class:`TransformError` naming the column and value), or ``skip_row``
    (drop the row).  Nulled/skipped row counts are charged to the ledger
    categories ``transform.unseen_nulled`` / ``transform.rows_skipped`` so
    pipelines can surface them in stage stats.
    """

    name = "recode"

    def __init__(self, transforms: TransformService):
        self._transforms = transforms

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        _handle, columns, _policy = self._parse_args(args)
        targets = {c.lower() for c in columns}
        out = []
        for column in input_schema:
            if column.name.lower() in targets:
                out.append(Column(column.name, DataType.INT, column.qualifier))
            else:
                out.append(column)
        return Schema(out)

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        handle, columns, policy = self._parse_args(args)
        recode_map: RecodeMap = self._transforms.get(handle)
        col_maps: list[tuple[str, int, dict]] = [
            (c, input_schema.resolve(None, c), recode_map.mapping_or_empty(c))
            for c in columns
        ]
        nulled = 0
        skipped = 0
        try:
            for row in rows:
                out = list(row)
                drop = False
                for col_name, index, mapping in col_maps:
                    value = out[index]
                    if value is None:
                        out[index] = None
                        continue
                    code = mapping.get(value)
                    if code is None:
                        if policy == "error":
                            raise TransformError(
                                f"unseen value {value!r} in recoded column "
                                f"{col_name!r}",
                                column=col_name,
                                value=value,
                            )
                        if policy == "skip_row":
                            drop = True
                            break
                        nulled += 1
                    out[index] = code
                if drop:
                    skipped += 1
                    continue
                yield tuple(out)
        finally:
            # Charge counts even when erroring out, so partial progress is
            # visible in the fault postmortem.
            if nulled:
                ctx.ledger.add("transform.unseen_nulled", nulled)
            if skipped:
                ctx.ledger.add("transform.rows_skipped", skipped)

    def process_batch(self, batch, input_schema: Schema, args: tuple, ctx: UdfContext):
        """Columnar recode: remap each target column's *dictionary* (K words)
        instead of its value array (N rows) — the O(cardinality) payoff of
        keeping VARCHAR dictionary-encoded end-to-end."""
        import numpy as np

        from repro.columnar.batch import ColumnBatch, ColumnVector
        from repro.sql.types import DataType

        handle, columns, policy = self._parse_args(args)
        recode_map: RecodeMap = self._transforms.get(handle)
        out_schema = self.output_schema(input_schema, args)
        indexes = {input_schema.resolve(None, c): c for c in columns}
        for index in indexes:
            vector = batch.columns[index]
            if vector.dtype is not DataType.VARCHAR or vector.dictionary is None:
                return None  # odd input shape: use the row path
        drop = (
            np.zeros(batch.num_rows, dtype=np.bool_) if policy == "skip_row" else None
        )
        # (row, column position, column, word) candidates for policy=error —
        # resolved after the scan so the raise matches row-major order.
        first_errors: list[tuple[int, int, str, str]] = []
        out_vectors: list[ColumnVector] = []
        nulled = 0
        for index, vector in enumerate(batch.columns):
            col_name = indexes.get(index)
            if col_name is None:
                out_vectors.append(vector)
                continue
            mapping = recode_map.mapping_or_empty(col_name)
            words = vector.dictionary or []
            # Codes are 1..K, so 0 marks an unseen dictionary word.
            word_codes = np.fromiter(
                (mapping.get(w, 0) for w in words), dtype=np.int64, count=len(words)
            )
            data = (
                word_codes[np.clip(vector.data, 0, None)]
                if len(words)
                else np.zeros(batch.num_rows, dtype=np.int64)
            )
            unseen = vector.valid & (data == 0)
            if unseen.any():
                if policy == "error":
                    row = int(np.argmax(unseen))
                    first_errors.append(
                        (row, columns.index(col_name), col_name, words[vector.data[row]])
                    )
                elif policy == "skip_row":
                    drop |= unseen
                else:
                    nulled += int(unseen.sum())
            out_vectors.append(
                ColumnVector(DataType.INT, data, vector.valid & ~unseen)
            )
        try:
            if first_errors:
                _row, _pos, col_name, value = min(first_errors)
                raise TransformError(
                    f"unseen value {value!r} in recoded column {col_name!r}",
                    column=col_name,
                    value=value,
                )
            out = ColumnBatch.from_columns(out_schema, out_vectors, batch.num_rows)
            if drop is not None and drop.any():
                return out.filter(~drop)
            return out
        finally:
            if nulled:
                ctx.ledger.add("transform.unseen_nulled", nulled)
            if drop is not None and drop.any():
                ctx.ledger.add("transform.rows_skipped", int(drop.sum()))

    @staticmethod
    def _parse_args(args: tuple) -> tuple[str, list[str], str]:
        """``(handle, columns, on_unseen_policy)`` from the UDF argument list.

        The policy rides as an ``'on_unseen=<policy>'`` string anywhere after
        the handle, so existing two-plus-argument call sites stay valid.
        """
        if len(args) < 2:
            raise ExecutionError("recode needs a map handle and >=1 column")
        handle = str(args[0])
        policy = "null"
        columns: list[str] = []
        for arg in args[1:]:
            text = str(arg)
            if text.startswith("on_unseen="):
                policy = text[len("on_unseen=") :]
                if policy not in ("null", "error", "skip_row"):
                    raise ExecutionError(
                        f"unknown on_unseen policy {policy!r}; expected "
                        "null, error, or skip_row"
                    )
                continue
            columns.append(text)
        if not columns:
            raise ExecutionError("recode needs a map handle and >=1 column")
        return handle, columns, policy


def recode_join_sql(
    source: str,
    map_table: str,
    recode_columns: list[str],
    output_columns: list[str],
) -> str:
    """The paper's §2.1 join formulation of phase 2, as SQL text.

    ``source`` is the (aliased-as-T) table holding the data; ``map_table``
    the recode map registered as ``M(colName, colVal, recodeVal)``.  Each
    recoded column contributes one self-joined instance of M, exactly like
    the paper's example::

       SELECT T.age, Mg.recodeVal AS gender, T.amount, Ma.recodeVal AS abandoned
       FROM T, M AS Mg, M AS Ma
       WHERE Mg.colName='gender' AND T.gender=Mg.colVal
         AND Ma.colName='abandoned' AND T.abandoned=Ma.colVal
    """
    recode_set = {c.lower() for c in recode_columns}
    aliases = {c.lower(): f"M{i}" for i, c in enumerate(recode_columns)}
    select_parts = []
    for column in output_columns:
        if column.lower() in recode_set:
            select_parts.append(f"{aliases[column.lower()]}.recodeVal AS {column}")
        else:
            select_parts.append(f"T.{column}")
    from_parts = [f"{source} AS T"]
    where_parts = []
    for column in recode_columns:
        alias = aliases[column.lower()]
        from_parts.append(f"{map_table} AS {alias}")
        where_parts.append(f"{alias}.colName = '{column.lower()}'")
        where_parts.append(f"T.{column} = {alias}.colVal")
    sql = f"SELECT {', '.join(select_parts)} FROM {', '.join(from_parts)}"
    if where_parts:
        sql += " WHERE " + " AND ".join(where_parts)
    return sql
