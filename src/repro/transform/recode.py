"""Recoding of categorical variables (§2.1): two-phase, distributed.

Phase 1 — each worker computes its *local* distinct ``(column, value)``
pairs in one scan over its partition (:class:`LocalDistinctUDF`), the engine
globalizes them with ``SELECT DISTINCT``, and a deterministic assignment
turns them into consecutive integers starting at 1 (what SystemML-style
consumers require; sorted order keeps runs reproducible).

Phase 2 — apply the map.  Two interchangeable implementations:

* the paper's SQL formulation (:func:`recode_join_sql`): register the map as
  a table ``M(colName, colVal, recodeVal)`` and join once per recoded
  column;
* the broadcast-map :class:`RecodeUDF`: one pipelined pass per partition,
  resolving the map through the :class:`~repro.transform.service.TransformService`.
"""

from collections.abc import Iterable
from dataclasses import dataclass

from repro.common.errors import ExecutionError
from repro.sql.types import Column, DataType, Schema
from repro.sql.udf import TableUDF, UdfContext
from repro.transform.service import TransformService


@dataclass(frozen=True)
class RecodeMap:
    """Per-column value -> consecutive-integer code mappings."""

    mappings: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]

    @staticmethod
    def from_distinct_rows(rows: Iterable[tuple]) -> "RecodeMap":
        """Build from global ``(colName, colVal)`` rows (phase-1 output).

        Values are sorted per column and assigned 1..K — the deterministic
        stand-in for the paper's recode-value-assignment UDF.
        """
        per_column: dict[str, set[str]] = {}
        for col_name, col_val in rows:
            if col_val is None:
                continue
            per_column.setdefault(col_name.lower(), set()).add(col_val)
        mappings = []
        for col_name in sorted(per_column):
            values = sorted(per_column[col_name])
            mappings.append(
                (col_name, tuple((v, i + 1) for i, v in enumerate(values)))
            )
        return RecodeMap(tuple(mappings))

    def columns(self) -> list[str]:
        return [name for name, _ in self.mappings]

    def mapping(self, column: str) -> dict[str, int]:
        for name, pairs in self.mappings:
            if name == column.lower():
                return dict(pairs)
        raise KeyError(f"no recode mapping for column {column!r}")

    def mapping_or_empty(self, column: str) -> dict[str, int]:
        """Like :meth:`mapping`, but an all-NULL column (which phase 1 never
        observed) yields an empty mapping instead of an error — every value
        recodes to NULL, which is the only sound answer."""
        try:
            return self.mapping(column)
        except KeyError:
            return {}

    def cardinality(self, column: str) -> int:
        return len(self.mapping(column))

    def values_in_code_order(self, column: str) -> list[str]:
        mapping = self.mapping(column)
        return [v for v, _c in sorted(mapping.items(), key=lambda kv: kv[1])]

    def code(self, column: str, value) -> int | None:
        """Code for a value; None for NULL or unseen values."""
        if value is None:
            return None
        return self.mapping(column).get(value)

    def as_table_rows(self) -> list[tuple]:
        """``(colName, colVal, recodeVal)`` rows, for the join formulation."""
        rows = []
        for name, pairs in self.mappings:
            for value, code in pairs:
                rows.append((name, value, code))
        return rows

    @staticmethod
    def table_schema() -> Schema:
        """Schema of :meth:`as_table_rows`."""
        return Schema.of(
            ("colName", DataType.VARCHAR),
            ("colVal", DataType.VARCHAR),
            ("recodeVal", DataType.INT),
        )


class LocalDistinctUDF(TableUDF):
    """Phase-1 table UDF: local distincts of every listed column, one scan.

    ``TABLE(local_distinct(input, 'gender', 'abandoned'))`` yields rows
    ``(colName, colVal)`` — the paper's example output
    ``{('gender','F'), ('gender','M'), ('abandoned','Yes')}``.  One scan
    covers *all* columns; the paper contrasts this with the one-SQL-query-
    per-column alternative that would rescan the data K times.
    """

    name = "local_distinct"

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        self._column_indexes(input_schema, args)  # validate early
        return Schema.of(
            ("colName", DataType.VARCHAR), ("colVal", DataType.VARCHAR)
        )

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        indexes = self._column_indexes(input_schema, args)
        seen: set[tuple[str, str]] = set()
        for row in rows:
            for col_name, index in indexes:
                value = row[index]
                if value is None:
                    continue
                seen.add((col_name, value))
        return sorted(seen)

    @staticmethod
    def _column_indexes(schema: Schema, args: tuple) -> list[tuple[str, int]]:
        if not args:
            raise ExecutionError("local_distinct needs at least one column name")
        return [(str(a).lower(), schema.resolve(None, str(a))) for a in args]


class RecodeUDF(TableUDF):
    """Phase-2 table UDF: map listed categorical columns to their codes.

    ``TABLE(recode(input, 'map_handle', 'gender', 'abandoned'))`` replaces
    each listed column's string value with its integer code (NULL for NULL
    or unseen values), leaving other columns untouched.
    """

    name = "recode"

    def __init__(self, transforms: TransformService):
        self._transforms = transforms

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        _handle, columns = self._parse_args(args)
        targets = {c.lower() for c in columns}
        out = []
        for column in input_schema:
            if column.name.lower() in targets:
                out.append(Column(column.name, DataType.INT, column.qualifier))
            else:
                out.append(column)
        return Schema(out)

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        handle, columns = self._parse_args(args)
        recode_map: RecodeMap = self._transforms.get(handle)
        col_maps: list[tuple[int, dict]] = [
            (input_schema.resolve(None, c), recode_map.mapping_or_empty(c))
            for c in columns
        ]
        for row in rows:
            out = list(row)
            for index, mapping in col_maps:
                value = out[index]
                out[index] = mapping.get(value) if value is not None else None
            yield tuple(out)

    @staticmethod
    def _parse_args(args: tuple) -> tuple[str, list[str]]:
        if len(args) < 2:
            raise ExecutionError("recode needs a map handle and >=1 column")
        return str(args[0]), [str(a) for a in args[1:]]


def recode_join_sql(
    source: str,
    map_table: str,
    recode_columns: list[str],
    output_columns: list[str],
) -> str:
    """The paper's §2.1 join formulation of phase 2, as SQL text.

    ``source`` is the (aliased-as-T) table holding the data; ``map_table``
    the recode map registered as ``M(colName, colVal, recodeVal)``.  Each
    recoded column contributes one self-joined instance of M, exactly like
    the paper's example::

       SELECT T.age, Mg.recodeVal AS gender, T.amount, Ma.recodeVal AS abandoned
       FROM T, M AS Mg, M AS Ma
       WHERE Mg.colName='gender' AND T.gender=Mg.colVal
         AND Ma.colName='abandoned' AND T.abandoned=Ma.colVal
    """
    recode_set = {c.lower() for c in recode_columns}
    aliases = {c.lower(): f"M{i}" for i, c in enumerate(recode_columns)}
    select_parts = []
    for column in output_columns:
        if column.lower() in recode_set:
            select_parts.append(f"{aliases[column.lower()]}.recodeVal AS {column}")
        else:
            select_parts.append(f"T.{column}")
    from_parts = [f"{source} AS T"]
    where_parts = []
    for column in recode_columns:
        alias = aliases[column.lower()]
        from_parts.append(f"{map_table} AS {alias}")
        where_parts.append(f"{alias}.colName = '{column.lower()}'")
        where_parts.append(f"T.{column} = {alias}.colVal")
    sql = f"SELECT {', '.join(select_parts)} FROM {', '.join(from_parts)}"
    if where_parts:
        sql += " WHERE " + " AND ".join(where_parts)
    return sql
