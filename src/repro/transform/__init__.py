"""In-SQL data transformation for ML (§2 of the paper).

Categorical variables live as strings in SQL systems but ML systems want
consecutive small integers (recoding) and often binary indicator columns
(dummy coding).  This package implements those transformations — plus the
"less common" effect and orthogonal codings §2 mentions — **inside the SQL
engine**, as parallel table UDFs, exactly as the paper proposes:

* pass 1 (:class:`~repro.transform.recode.LocalDistinctUDF` + a
  ``SELECT DISTINCT``) computes the global distinct values of every
  categorical column in a single scan;
* a deterministic assignment turns them into a
  :class:`~repro.transform.recode.RecodeMap` (consecutive integers from 1,
  as SystemML-style consumers require);
* pass 2 applies the map — either through the paper's join formulation
  (:func:`~repro.transform.recode.recode_join_sql`) or through the
  broadcast-map :class:`~repro.transform.recode.RecodeUDF`;
* :class:`~repro.transform.dummy.DummyCodeUDF` (and the effect/orthogonal
  variants) expand recoded columns into indicator/contrast columns in one
  further pipelined pass.
"""

from repro.transform.dummy import DummyCodeUDF
from repro.transform.effect import EffectCodeUDF, OrthogonalCodeUDF
from repro.transform.recode import (
    LocalDistinctUDF,
    RecodeMap,
    RecodeUDF,
    recode_join_sql,
)
from repro.transform.service import TransformService
from repro.transform.spec import TransformSpec

__all__ = [
    "DummyCodeUDF",
    "EffectCodeUDF",
    "LocalDistinctUDF",
    "OrthogonalCodeUDF",
    "RecodeMap",
    "RecodeUDF",
    "TransformService",
    "TransformSpec",
    "recode_join_sql",
]
