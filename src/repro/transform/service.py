"""Registry of recode maps, shared between SQL UDF invocations.

Table-UDF arguments must be constants (that is true in real engines too), so
the recode/dummy UDFs receive a *handle* string and resolve the actual
:class:`~repro.transform.recode.RecodeMap` through this service — the moral
equivalent of a real UDF reading its side data from a shared location.
"""

import threading

from repro.common.errors import ExecutionError


class TransformService:
    """Thread-safe name -> RecodeMap registry."""

    def __init__(self):
        self._maps: dict[str, object] = {}
        self._lock = threading.Lock()

    def register(self, handle: str, recode_map) -> None:
        """Store a map under a handle (overwrites: rebuilds are legitimate)."""
        with self._lock:
            self._maps[handle] = recode_map

    def get(self, handle: str):
        """Resolve a handle; raises with the known handles on a miss."""
        with self._lock:
            recode_map = self._maps.get(handle)
        if recode_map is None:
            raise ExecutionError(
                f"unknown recode map handle {handle!r}; registered: "
                f"{sorted(self._maps)}"
            )
        return recode_map

    def handles(self) -> list[str]:
        with self._lock:
            return sorted(self._maps)
