"""Effect coding and orthogonal (polynomial contrast) coding.

§2.2 notes that "some less common transformations, such as effect coding and
orthogonal coding, can be implemented in similar ways as dummy coding" — so
here they are, as the same kind of single-pass parallel table UDFs.

* **Effect coding**: a K-level categorical becomes K-1 columns.  Level i<K
  sets column i to 1; the last level sets *all* columns to -1 (the reference
  level carries the negative weight, making coefficients deviations from the
  grand mean).
* **Orthogonal coding**: K-1 polynomial contrast columns (linear, quadratic,
  ...), mutually orthogonal and zero-sum, built from centered powers via
  Gram-Schmidt — the classic trend contrasts for ordered categories.
"""

from collections.abc import Iterable

import numpy as np

from repro.common.errors import ExecutionError
from repro.sql.types import Column, DataType, Schema
from repro.sql.udf import TableUDF, UdfContext
from repro.transform.recode import RecodeMap
from repro.transform.service import TransformService


def effect_row(code: int, k: int) -> list[int]:
    """Effect-coded vector (length K-1) for recoded value ``code`` in 1..K."""
    if not 1 <= code <= k:
        raise ExecutionError(f"effect coding expects 1..{k}, got {code}")
    if code == k:
        return [-1] * (k - 1)
    row = [0] * (k - 1)
    row[code - 1] = 1
    return row


def orthogonal_contrast_matrix(k: int) -> np.ndarray:
    """K x (K-1) matrix of normalized polynomial contrasts.

    Columns are mutually orthogonal, orthogonal to the constant vector, and
    scaled to unit norm (matching R's ``contr.poly``).
    """
    if k < 2:
        raise ExecutionError("orthogonal coding needs >= 2 levels")
    levels = np.arange(1, k + 1, dtype=float)
    raw = np.vander(levels, k, increasing=True)  # 1, x, x^2, ...
    q, _r = np.linalg.qr(raw)
    contrasts = q[:, 1:]  # drop the constant column
    # Fix signs so the linear contrast increases with the level.
    for j in range(contrasts.shape[1]):
        pivot = contrasts[-1, j]
        if pivot < 0:
            contrasts[:, j] = -contrasts[:, j]
    return contrasts


class _ContrastCodeUDF(TableUDF):
    """Shared machinery: replace recoded columns with K-1 contrast columns."""

    #: subclass hooks
    suffixes: str = "c"
    out_type: DataType = DataType.INT

    def __init__(self, transforms: TransformService):
        self._transforms = transforms

    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        handle, columns = self._parse_args(args)
        recode_map: RecodeMap = self._transforms.get(handle)
        targets = {c.lower() for c in columns}
        out: list[Column] = []
        for column in input_schema:
            if column.name.lower() in targets:
                k = len(recode_map.mapping_or_empty(column.name))
                for j in range(max(k - 1, 0)):
                    out.append(
                        Column(
                            f"{column.name}_{self.suffixes}{j + 1}",
                            self.out_type,
                            column.qualifier,
                        )
                    )
            else:
                out.append(column)
        return Schema(out)

    def process_partition(
        self, rows: Iterable[tuple], input_schema: Schema, args: tuple, ctx: UdfContext
    ) -> Iterable[tuple]:
        handle, columns = self._parse_args(args)
        recode_map: RecodeMap = self._transforms.get(handle)
        targets = {c.lower() for c in columns}
        layout: list[tuple[int | None, int]] = []
        cardinalities: dict[int, int] = {}
        for i, column in enumerate(input_schema):
            if column.name.lower() in targets:
                cardinalities[i] = len(recode_map.mapping_or_empty(column.name))
                layout.append((cardinalities[i], i))
            else:
                layout.append((None, i))
        for row in rows:
            out: list = []
            for k, index in layout:
                if k is None:
                    out.append(row[index])
                    continue
                code = row[index]
                if code is None:
                    out.extend([None] * (k - 1))
                else:
                    out.extend(self._encode(int(code), k))
            yield tuple(out)

    def _encode(self, code: int, k: int) -> list:
        raise NotImplementedError

    @staticmethod
    def _parse_args(args: tuple) -> tuple[str, list[str]]:
        if len(args) < 2:
            raise ExecutionError("contrast coding needs a map handle and >=1 column")
        return str(args[0]), [str(a) for a in args[1:]]


class EffectCodeUDF(_ContrastCodeUDF):
    """``TABLE(effect_code(input, 'map_handle', col, ...))``."""

    name = "effect_code"
    suffixes = "e"
    out_type = DataType.INT

    def _encode(self, code: int, k: int) -> list:
        return effect_row(code, k)


class OrthogonalCodeUDF(_ContrastCodeUDF):
    """``TABLE(orthogonal_code(input, 'map_handle', col, ...))``."""

    name = "orthogonal_code"
    suffixes = "o"
    out_type = DataType.DOUBLE

    def __init__(self, transforms: TransformService):
        super().__init__(transforms)
        self._matrices: dict[int, np.ndarray] = {}

    def _encode(self, code: int, k: int) -> list:
        matrix = self._matrices.get(k)
        if matrix is None:
            matrix = orthogonal_contrast_matrix(k)
            self._matrices[k] = matrix
        if not 1 <= code <= k:
            raise ExecutionError(f"orthogonal coding expects 1..{k}, got {code}")
        return [float(x) for x in matrix[code - 1]]
