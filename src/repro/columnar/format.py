"""Columnar part-file encoding/decoding and its InputFormat.

File layout (JSON, one document per part file — the moral equivalent of one
Parquet row group):

.. code-block:: json

   {"magic": "RCOL1", "rows": 3,
    "columns": [
       {"name": "gender", "type": "VARCHAR", "encoding": "dict",
        "dictionary": ["M", "F"], "codes": [0, 1, 0]},
       {"name": "age", "type": "INT", "encoding": "plain",
        "values": [57, 40, 35]}]}

VARCHAR columns are dictionary-encoded with a *file-local* dictionary in
first-occurrence order (0-based) — deliberately mirroring the properties
§2.1 says make such dictionaries unusable as recode values.  NULLs encode
as code/value null.
"""

import json
from dataclasses import dataclass

from repro.common.errors import ExecutionError
from repro.hdfs.filesystem import DistributedFileSystem
from repro.iofmt.inputformat import InputFormat, InputSplit, JobConf, RecordReader
from repro.sql.types import DataType, Schema

MAGIC = "RCOL1"


def encode_partition(schema: Schema, rows: list[tuple]) -> bytes:
    """Encode one partition's rows into a columnar part file."""
    columns = []
    # One zip(*rows) pivots all columns at once instead of one O(rows)
    # comprehension per column.
    pivoted = list(zip(*rows)) if rows else [()] * len(schema)
    for index, column in enumerate(schema):
        values = pivoted[index]
        if column.dtype is DataType.VARCHAR:
            dictionary: list[str] = []
            positions: dict[str, int] = {}
            codes: list[int | None] = []
            for value in values:
                if value is None:
                    codes.append(None)
                    continue
                position = positions.get(value)
                if position is None:
                    position = len(dictionary)
                    positions[value] = position
                    dictionary.append(value)
                codes.append(position)
            columns.append(
                {
                    "name": column.name,
                    "type": column.dtype.value,
                    "encoding": "dict",
                    "dictionary": dictionary,
                    "codes": codes,
                }
            )
        else:
            columns.append(
                {
                    "name": column.name,
                    "type": column.dtype.value,
                    "encoding": "plain",
                    "values": values,
                }
            )
    document = {"magic": MAGIC, "rows": len(rows), "columns": columns}
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def decode_partition(data: bytes) -> tuple[list[str], list[tuple]]:
    """Decode a part file into (column names, rows)."""
    document = json.loads(data.decode("utf-8"))
    if document.get("magic") != MAGIC:
        raise ExecutionError("not a columnar part file (bad magic)")
    names = [c["name"] for c in document["columns"]]
    decoded_columns = []
    for column in document["columns"]:
        if column["encoding"] == "dict":
            dictionary = column["dictionary"]
            decoded_columns.append(
                [None if code is None else dictionary[code] for code in column["codes"]]
            )
        else:
            dtype = DataType(column["type"])
            if dtype in (DataType.INT, DataType.BIGINT):
                decoded_columns.append(
                    [None if v is None else int(v) for v in column["values"]]
                )
            elif dtype is DataType.DOUBLE:
                decoded_columns.append(
                    [None if v is None else float(v) for v in column["values"]]
                )
            else:
                decoded_columns.append(column["values"])
    rows = list(zip(*decoded_columns)) if decoded_columns else []
    if len(rows) != document["rows"]:
        raise ExecutionError(
            f"columnar file corrupt: header says {document['rows']} rows, "
            f"decoded {len(rows)}"
        )
    return names, rows


def decode_partition_batch(data: bytes, schema: Schema):
    """Decode a part file straight into a typed
    :class:`~repro.columnar.batch.ColumnBatch` — the columnar scan path.

    Dictionary-encoded VARCHAR columns *adopt* the file-local dictionary
    (codes are copied, never re-encoded); plain columns land in numpy
    arrays.  No row tuples are materialized.
    """
    from repro.columnar.batch import ColumnBatch, ColumnVector

    document = json.loads(data.decode("utf-8"))
    if document.get("magic") != MAGIC:
        raise ExecutionError("not a columnar part file (bad magic)")
    if len(document["columns"]) != len(schema):
        raise ExecutionError(
            f"columnar file has {len(document['columns'])} columns, "
            f"schema expects {len(schema)}"
        )
    vectors = []
    for column, doc in zip(schema, document["columns"]):
        if doc["encoding"] == "dict":
            vectors.append(ColumnVector.from_dict_codes(doc["codes"], doc["dictionary"]))
        else:
            vectors.append(ColumnVector.from_values(column.dtype, doc["values"]))
    batch = ColumnBatch.from_columns(schema, vectors, document["rows"])
    if vectors and len(vectors[0]) != document["rows"]:
        raise ExecutionError(
            f"columnar file corrupt: header says {document['rows']} rows, "
            f"decoded {len(vectors[0])}"
        )
    return batch


def read_partition_dictionary(
    dfs: DistributedFileSystem, path: str, column: str
) -> list[str]:
    """The file-local dictionary of one VARCHAR column (first-seen order).

    This is the "internal physical dictionary encoding" §2.1 talks about;
    exposing it lets tests demonstrate why it cannot serve as a recode map.
    """
    document = json.loads(dfs.read_bytes(path).decode("utf-8"))
    for col in document["columns"]:
        if col["name"].lower() == column.lower():
            if col["encoding"] != "dict":
                raise ExecutionError(f"column {column!r} is not dictionary-encoded")
            return list(col["dictionary"])
    raise ExecutionError(f"no column {column!r} in {path}")


def write_table(
    dfs: DistributedFileSystem,
    directory: str,
    schema: Schema,
    partitions: list[list[tuple]],
    client_ips: list[str] | None = None,
) -> int:
    """Write one part file per partition; returns total bytes written."""
    dfs.mkdirs(directory)
    total = 0
    for index, rows in enumerate(partitions):
        payload = encode_partition(schema, rows)
        client_ip = client_ips[index % len(client_ips)] if client_ips else None
        dfs.write_bytes(f"{directory}/part-{index:05d}.rcol", payload, client_ip)
        total += len(payload)
    return total


@dataclass(frozen=True)
class ColumnarSplit(InputSplit):
    """One part file (the row-group granularity of this format)."""

    path: str
    file_length: int
    hosts: tuple[str, ...] = ()

    def locations(self) -> tuple[str, ...]:
        return self.hosts

    def length(self) -> int:
        return self.file_length


class ColumnarRecordReader(RecordReader):
    """Yields the rows of one part file as tuples."""

    def __init__(self, dfs: DistributedFileSystem, split: ColumnarSplit, client_ip=None):
        self._dfs = dfs
        self._split = split
        self._client_ip = client_ip

    def __iter__(self):
        data = self._dfs.read_bytes(self._split.path, client_ip=self._client_ip)
        _names, rows = decode_partition(data)
        yield from rows


class ColumnarInputFormat(InputFormat):
    """One split per part file; records are typed row tuples.

    Required configuration: ``input.path`` property and a ``dfs`` object.
    """

    def get_splits(self, conf: JobConf, num_splits: int) -> list[InputSplit]:
        dfs: DistributedFileSystem = conf.require_object("dfs")
        path = conf.get("input.path")
        if path is None:
            raise ValueError("ColumnarInputFormat requires the 'input.path' property")
        splits: list[InputSplit] = []
        for file_path in dfs.list_files(path):
            locations = dfs.block_locations(file_path)
            hosts = locations[0].hosts if locations else ()
            splits.append(
                ColumnarSplit(file_path, dfs.status(file_path).length, hosts)
            )
        return splits

    def create_record_reader(self, split: InputSplit, conf: JobConf) -> RecordReader:
        if not isinstance(split, ColumnarSplit):
            raise TypeError(f"ColumnarInputFormat cannot read {type(split).__name__}")
        dfs: DistributedFileSystem = conf.require_object("dfs")
        return ColumnarRecordReader(dfs, split, client_ip=conf.get("client.ip"))
