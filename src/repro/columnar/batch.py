"""Typed columnar batches: one numpy array per column plus a validity mask.

A :class:`ColumnBatch` is the in-memory unit of the columnar data plane
(DESIGN §10): the scan produces one per RCOL1 part file, the executor's
vectorized kernels filter/project it without materializing Python tuples,
the transfer layer ships it as a single ``C`` wire frame, and ML ingestion
turns it into ``(X, y)`` arrays with no per-row ``LabeledPoint``
construction.

Storage per SQL type:

========  ===================  ================
SQL type  numpy storage        NULL placeholder
========  ===================  ================
INT       int64                0
BIGINT    int64                0
DOUBLE    float64              0.0
BOOLEAN   bool\\_               False
VARCHAR   int32 codes + dict   -1
========  ===================  ================

Every column carries an explicit boolean validity mask, so placeholders
never leak: a slot is NULL iff ``valid`` is False there.  VARCHAR columns
are dictionary-encoded in first-occurrence order (0-based) — the same
layout the RCOL1 part files use, so a columnar scan adopts file
dictionaries without re-encoding, and transforms can recode by mapping the
(tiny) dictionary instead of the (huge) value column.

Conversion from rows is strict about Python types (an ``int`` in a DOUBLE
column widens, but a ``float`` in an INT column raises), so callers can
attempt batch construction and fall back to the row representation on any
mismatch instead of silently corrupting values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sql.types import DataType, Schema

_NUMPY_DTYPE = {
    DataType.INT: np.int64,
    DataType.BIGINT: np.int64,
    DataType.DOUBLE: np.float64,
    DataType.BOOLEAN: np.bool_,
    DataType.VARCHAR: np.int32,  # dictionary codes
}


def _coerce(dtype: DataType, value):
    """Validate/widen one non-NULL Python value for columnar storage."""
    if dtype in (DataType.INT, DataType.BIGINT):
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"{dtype.value} column got {type(value).__name__}")
        return value
    if dtype is DataType.DOUBLE:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"DOUBLE column got {type(value).__name__}")
        return float(value)
    if dtype is DataType.BOOLEAN:
        if not isinstance(value, bool):
            raise TypeError(f"BOOLEAN column got {type(value).__name__}")
        return value
    if not isinstance(value, str):
        raise TypeError(f"VARCHAR column got {type(value).__name__}")
    return value


@dataclass
class ColumnVector:
    """One typed column: data array + validity mask (+ dictionary)."""

    dtype: DataType
    data: np.ndarray
    valid: np.ndarray
    dictionary: list[str] | None = None

    @classmethod
    def from_values(cls, dtype: DataType, values: list) -> "ColumnVector":
        """Build a vector from Python values (``None`` marks NULL).

        Raises ``TypeError``/``OverflowError`` on a value the storage type
        cannot represent faithfully — callers fall back to rows.
        """
        n = len(values)
        if n:
            # Fast path: a clean, NULL-free column skips per-value _coerce.
            # ``type(v) is`` (not isinstance) keeps _coerce's strictness —
            # bool is not an INT and not a DOUBLE operand here; mixed or
            # NULL-bearing columns take the per-value path below.
            if dtype is DataType.VARCHAR:
                if all(type(v) is str for v in values):
                    positions: dict[str, int] = {}
                    setdefault = positions.setdefault
                    codes = np.fromiter(
                        (setdefault(v, len(positions)) for v in values),
                        dtype=np.int32,
                        count=n,
                    )
                    return cls(
                        dtype, codes, np.ones(n, dtype=np.bool_), list(positions)
                    )
            else:
                if dtype is DataType.DOUBLE:
                    clean = all(type(v) in (float, int) for v in values)
                elif dtype is DataType.BOOLEAN:
                    clean = all(type(v) is bool for v in values)
                else:
                    clean = all(type(v) is int for v in values)
                if clean:
                    return cls(
                        dtype,
                        np.array(values, dtype=_NUMPY_DTYPE[dtype]),
                        np.ones(n, dtype=np.bool_),
                    )
        valid = np.fromiter((v is not None for v in values), dtype=np.bool_, count=n)
        if dtype is DataType.VARCHAR:
            dictionary: list[str] = []
            positions: dict[str, int] = {}
            codes = np.empty(n, dtype=np.int32)
            for i, value in enumerate(values):
                if value is None:
                    codes[i] = -1
                    continue
                value = _coerce(dtype, value)
                position = positions.get(value)
                if position is None:
                    position = len(dictionary)
                    positions[value] = position
                    dictionary.append(value)
                codes[i] = position
            return cls(dtype, codes, valid, dictionary)
        zero = False if dtype is DataType.BOOLEAN else 0
        data = np.fromiter(
            (zero if v is None else _coerce(dtype, v) for v in values),
            dtype=_NUMPY_DTYPE[dtype],
            count=n,
        )
        return cls(dtype, data, valid)

    @classmethod
    def from_dict_codes(
        cls, codes: list[int | None] | np.ndarray, dictionary: list[str]
    ) -> "ColumnVector":
        """Adopt an RCOL1-style dictionary column (``None``/-1 = NULL)."""
        arr = np.fromiter(
            (-1 if c is None else c for c in codes), dtype=np.int32, count=len(codes)
        )
        return cls(DataType.VARCHAR, arr, arr >= 0, list(dictionary))

    def __len__(self) -> int:
        return len(self.data)

    def take(self, indices: np.ndarray) -> "ColumnVector":
        return ColumnVector(
            self.dtype, self.data[indices], self.valid[indices], self.dictionary
        )

    def with_dictionary(self, dictionary: list[str], codes: np.ndarray) -> "ColumnVector":
        """Re-encoded copy: same validity, new dictionary + code array."""
        return ColumnVector(self.dtype, codes, self.valid.copy(), list(dictionary))

    def to_pylist(self) -> list:
        """Back to Python values, ``None`` where invalid."""
        raw = self.data.tolist()
        valid = self.valid.tolist()
        if self.dtype is DataType.VARCHAR:
            words = self.dictionary or []
            return [words[c] if ok else None for c, ok in zip(raw, valid)]
        return [v if ok else None for v, ok in zip(raw, valid)]

    def value_bytes(self) -> int:
        """Seed-formula byte estimate of this column's values
        (``estimate_value_bytes``: NULL=1, bool=1, int/float=8, str=len+4)."""
        n = len(self.data)
        nulls = n - int(self.valid.sum())
        if self.dtype is DataType.BOOLEAN:
            return n  # 1 byte either way
        if self.dtype is DataType.VARCHAR:
            lens = np.fromiter(
                (len(w) + 4 for w in self.dictionary or []), dtype=np.int64
            )
            return int(lens[self.data[self.valid]].sum()) + nulls
        return 8 * (n - nulls) + nulls


class ColumnBatch:
    """A batch of rows stored column-wise; the executor/transfer/ML unit."""

    def __init__(self, schema: Schema, columns: list[ColumnVector]):
        self.schema = schema
        self.columns = columns
        self.num_rows = len(columns[0]) if columns else 0
        self._rows: list[tuple] | None = None

    # ------------------------------------------------------------- building

    @classmethod
    def from_rows(cls, schema: Schema, rows: list[tuple]) -> "ColumnBatch":
        """Pivot row tuples into typed columns (single ``zip(*rows)`` pass).

        Raises on a type the storage cannot represent (callers keep rows).
        """
        rows = rows if isinstance(rows, list) else list(rows)
        pivoted = list(zip(*rows)) if rows else [[] for _ in schema]
        if len(pivoted) != len(schema):
            raise TypeError(
                f"rows have {len(pivoted)} fields, schema has {len(schema)}"
            )
        columns = [
            ColumnVector.from_values(col.dtype, list(values))
            for col, values in zip(schema, pivoted)
        ]
        batch = cls(schema, columns)
        batch.num_rows = len(rows)
        return batch

    @classmethod
    def from_columns(
        cls, schema: Schema, columns: list[ColumnVector], num_rows: int | None = None
    ) -> "ColumnBatch":
        batch = cls(schema, columns)
        if num_rows is not None:
            batch.num_rows = num_rows
        return batch

    # ------------------------------------------------------------ accessors

    def __len__(self) -> int:
        return self.num_rows

    def column(self, index: int) -> ColumnVector:
        return self.columns[index]

    def to_rows(self) -> list[tuple]:
        """Row-tuple view (memoized — the seam adapter used by every
        operator without a columnar kernel)."""
        if self._rows is None:
            if not self.columns:
                self._rows = [()] * self.num_rows
            else:
                self._rows = list(zip(*(c.to_pylist() for c in self.columns)))
        return self._rows

    # ------------------------------------------------------------- kernels

    def filter(self, mask: np.ndarray) -> "ColumnBatch":
        """Keep rows where ``mask`` is True (boolean array, len == rows)."""
        columns = [c.take(mask) for c in self.columns]
        batch = ColumnBatch(self.schema, columns)
        batch.num_rows = int(mask.sum()) if not columns else batch.num_rows
        return batch

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """Row subset/reorder by integer index array."""
        columns = [c.take(indices) for c in self.columns]
        batch = ColumnBatch(self.schema, columns)
        batch.num_rows = len(indices) if not columns else batch.num_rows
        return batch

    def slice_step(self, start: int, step: int) -> "ColumnBatch":
        """Rows ``start::step`` — the round-robin channel fan-out split."""
        return self.take(np.arange(start, self.num_rows, step))

    @classmethod
    def concat(cls, schema: Schema, batches: list["ColumnBatch"]) -> "ColumnBatch":
        """Stack batches vertically.  VARCHAR columns are re-mapped into a
        union dictionary (dictionary-sized work, not row-sized)."""
        if len(batches) == 1:
            return batches[0]
        num_rows = sum(b.num_rows for b in batches)
        vectors = []
        for index, column in enumerate(schema):
            parts = [b.columns[index] for b in batches]
            valid = np.concatenate([p.valid for p in parts])
            if column.dtype is DataType.VARCHAR:
                union: list[str] = []
                positions: dict[str, int] = {}
                remapped = []
                for part in parts:
                    words = part.dictionary or []
                    lookup = np.empty(max(len(words), 1), dtype=np.int32)
                    for i, word in enumerate(words):
                        position = positions.get(word)
                        if position is None:
                            position = len(union)
                            positions[word] = position
                            union.append(word)
                        lookup[i] = position
                    remapped.append(
                        np.where(part.data >= 0, lookup[np.clip(part.data, 0, None)], -1)
                    )
                codes = (
                    np.concatenate(remapped).astype(np.int32)
                    if remapped
                    else np.empty(0, dtype=np.int32)
                )
                vectors.append(ColumnVector(column.dtype, codes, valid, union))
            else:
                data = np.concatenate([p.data for p in parts])
                vectors.append(ColumnVector(column.dtype, data, valid))
        return cls.from_columns(schema, vectors, num_rows)

    # ----------------------------------------------------------- accounting

    def logical_bytes(self) -> int:
        """Ledger-accountable size: the seed ``estimate_row_bytes`` formula
        (2 per row + per-value estimate) computed vectorized."""
        return 2 * self.num_rows + sum(c.value_bytes() for c in self.columns)


def batch_to_xy(
    batch: ColumnBatch, label_index: int, label_offset: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """(features, labels) float64 arrays straight from a batch — the
    columnar replacement for per-row ``labeled_point_from_fields``.

    Every column is interpreted numerically (the transfer feeds the trainer
    recoded/dummy-coded numerics); NULLs become ``nan`` like ``float(None)``
    would have raised in the row path — callers upstream already guarantee
    non-NULL ML inputs, so this only matters for malformed feeds.
    """
    n = batch.num_rows
    label_index = label_index % len(batch.columns) if batch.columns else 0
    feature_cols = []
    label = None
    for i, col in enumerate(batch.columns):
        if col.dtype is DataType.VARCHAR:
            words = np.fromiter(
                (float(w) for w in col.dictionary or []),
                dtype=np.float64,
                count=len(col.dictionary or []),
            )
            values = np.where(col.valid, words[np.clip(col.data, 0, None)]
                              if len(words) else np.zeros(n), np.nan)
        else:
            values = col.data.astype(np.float64)
            if not col.valid.all():
                values = np.where(col.valid, values, np.nan)
        if i == label_index:
            label = values - float(label_offset)
        else:
            feature_cols.append(values)
    X = (
        np.column_stack(feature_cols)
        if feature_cols
        else np.empty((n, 0), dtype=np.float64)
    )
    y = label if label is not None else np.empty(n, dtype=np.float64)
    return X, y
