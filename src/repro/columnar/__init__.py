"""A columnar storage format with per-partition dictionary encoding.

§2.1 discusses why the dictionary compression of columnar formats (Parquet
for Impala, ORC for Hive) cannot substitute for recoding:

1. "the internal physical dictionary encoding is usually not exposed to
   users" — here it *is* exposed (:func:`read_partition_dictionary`), so the
   remaining arguments can be demonstrated rather than asserted;
2. "most dictionary compression ... is applied only for a local partition of
   data.  Therefore, we cannot directly use the local encoded integers for
   the global recoding" — each part file in this format carries its own
   dictionary in first-occurrence order, so the same value genuinely gets
   different codes in different partitions (tested);
3. "some dictionary compression algorithms may not produce consecutive
   integers [from 1]" — codes here are 0-based file-local positions;
4. "the recoding needs to be done on filtered data" — a filter narrows the
   value set, so even a global dictionary would over-count cardinality.

Practically, the format gives external tables a second storage option
(``format="columnar"``) with smaller scan bytes than CSV text.
"""

from repro.columnar.format import (
    ColumnarInputFormat,
    decode_partition,
    encode_partition,
    read_partition_dictionary,
    write_table,
)

__all__ = [
    "ColumnarInputFormat",
    "decode_partition",
    "encode_partition",
    "read_partition_dictionary",
    "write_table",
]
