"""Conservative predicate-implication checking.

``implies(stronger, weaker)`` returns True only when every row satisfying
``stronger`` must satisfy ``weaker`` — the "same as or logically stronger
than" test of §5.2 condition 2 (the paper's example: ``a < 18`` is logically
stronger than ``a <= 20``).  False means "could not prove", never "proved
false"; cache matching degrades gracefully to a miss.

Both expressions are assumed normalized (qualifiers resolved to base-table
names, lowercased) by :mod:`repro.rewriter.matching`.
"""

from repro.sql.expressions import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
)


def implies(stronger: Expr, weaker: Expr) -> bool:
    """True when ``stronger`` provably implies ``weaker``."""
    if stronger == weaker:
        return True
    for s in _as_ranges(stronger):
        for w in _as_ranges(weaker):
            if _range_implies(s, w):
                return True
    return _set_implies(stronger, weaker)


# A "range atom": (column, op, value) with op in = < <= > >=
_RangeAtom = tuple[tuple[str | None, str], str, object]


def _column_and_literal(expr: Comparison) -> tuple[ColumnRef, object, str] | None:
    """Normalize to (column, literal, op) with the column on the left."""
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left, expr.right.value, expr.op
    if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        flipped = expr.flipped()
        return flipped.left, flipped.right.value, flipped.op  # type: ignore[return-value]
    return None


def _as_ranges(expr: Expr) -> list[_RangeAtom]:
    """Decompose an expression into range atoms it is *equivalent* to.

    BETWEEN yields both bounds only for the implication direction where the
    caller iterates atoms of the *weaker* side individually, so BETWEEN is
    expanded on the weaker side but treated whole on the stronger side via
    :func:`_between_atoms`.
    """
    atoms: list[_RangeAtom] = []
    if isinstance(expr, Comparison) and expr.op in ("=", "<", "<=", ">", ">="):
        normalized = _column_and_literal(expr)
        if normalized:
            column, value, op = normalized
            atoms.append(((column.qualifier, column.name), op, value))
    return atoms


def _between_atoms(expr: Expr) -> list[_RangeAtom] | None:
    if isinstance(expr, Between) and not expr.negated:
        if isinstance(expr.operand, ColumnRef) and isinstance(expr.low, Literal) and isinstance(expr.high, Literal):
            key = (expr.operand.qualifier, expr.operand.name)
            return [(key, ">=", expr.low.value), (key, "<=", expr.high.value)]
    return None


def _range_implies(stronger: _RangeAtom, weaker: _RangeAtom) -> bool:
    (s_col, s_op, s_val), (w_col, w_op, w_val) = stronger, weaker
    if s_col != w_col:
        return False
    try:
        if w_op == "=":
            return s_op == "=" and s_val == w_val
        if s_op == "=":
            # An equality implies any range containing the value.
            return _value_satisfies(s_val, w_op, w_val)
        if w_op in ("<", "<="):
            if s_op not in ("<", "<="):
                return False
            if s_val < w_val:
                return True
            if s_val == w_val:
                return not (s_op == "<=" and w_op == "<")
            return False
        if w_op in (">", ">="):
            if s_op not in (">", ">="):
                return False
            if s_val > w_val:
                return True
            if s_val == w_val:
                return not (s_op == ">=" and w_op == ">")
            return False
    except TypeError:
        return False  # incomparable literal types
    return False


def _value_satisfies(value, op: str, bound) -> bool:
    try:
        if op == "<":
            return value < bound
        if op == "<=":
            return value <= bound
        if op == ">":
            return value > bound
        if op == ">=":
            return value >= bound
        if op == "=":
            return value == bound
    except TypeError:
        return False
    return False


def _set_implies(stronger: Expr, weaker: Expr) -> bool:
    """IN-list and BETWEEN cases."""
    # BETWEEN as the stronger side: both bounds must imply the weaker atom.
    between = _between_atoms(stronger)
    if between is not None:
        weaker_atoms = _as_ranges(weaker)
        if weaker_atoms:
            return any(
                _range_implies(atom, w) for atom in between for w in weaker_atoms
            )
        weaker_between = _between_atoms(weaker)
        if weaker_between is not None:
            return all(
                any(_range_implies(s, w) for s in between) for w in weaker_between
            )
        return False
    # BETWEEN as the weaker side: stronger must imply *both* bounds.
    weaker_between = _between_atoms(weaker)
    if weaker_between is not None:
        stronger_atoms = _as_ranges(stronger)
        if stronger_atoms:
            return all(
                any(_range_implies(s, w) for s in stronger_atoms)
                for w in weaker_between
            )
        return False

    stronger_in = _in_values(stronger)
    weaker_in = _in_values(weaker)
    if weaker_in is not None:
        w_col, w_values = weaker_in
        if stronger_in is not None:
            s_col, s_values = stronger_in
            return s_col == w_col and s_values <= w_values
        eq = _equality(stronger)
        if eq is not None:
            s_col, s_value = eq
            return s_col == w_col and s_value in w_values
        return False
    if stronger_in is not None:
        eq = _equality(weaker)
        return False  # an IN-list implies an equality only if singleton
    return False


def _in_values(expr: Expr):
    if isinstance(expr, InList) and not expr.negated:
        if isinstance(expr.operand, ColumnRef) and all(
            isinstance(v, Literal) for v in expr.values
        ):
            key = (expr.operand.qualifier, expr.operand.name)
            return key, {v.value for v in expr.values}
    return None


def _equality(expr: Expr):
    if isinstance(expr, Comparison) and expr.op == "=":
        normalized = _column_and_literal(expr)
        if normalized:
            column, value, op = normalized
            if op == "=":
                return (column.qualifier, column.name), value
    return None
