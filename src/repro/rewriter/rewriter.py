"""The query rewriter (§4): user query + spec + ML target -> extended SQL.

The rewriter never touches engine internals; its output is plain SQL text
invoking the registered table UDFs, which is the whole point of §4 — the
solution stays generic because composition happens at the SQL surface.

Rewrite flow (with a cache attached):

1. try the §5.1 full-transformed match — on a hit the plan reads the cached
   view (with extra predicates recoded onto it) and re-applies only dummy
   coding, skipping the preparation query *and* both recoding passes;
2. else try the §5.2 recode-map match — on a hit pass 1 is skipped and the
   plan goes straight to the recode/dummy/stream pass;
3. else emit both passes: the ``local_distinct`` + ``SELECT DISTINCT``
   pass-1 query, and the pass-2 transform query.
"""

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import PlanError

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.caching
    from repro.caching.cache import CacheManager
from repro.sql.ast import SelectQuery
from repro.sql.expressions import (
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    transform,
)
from repro.transform.recode import RecodeMap
from repro.transform.service import TransformService
from repro.transform.spec import TransformSpec

_plan_counter = itertools.count(1)


@dataclass
class RewritePlan:
    """Executable description of one transformation+transfer pipeline.

    ``kind`` is one of ``no_cache`` / ``recode_map_cache`` / ``full_cache``.
    ``pass1_sql`` is None whenever a cache hit made pass 1 unnecessary.
    ``inner_sql`` is the transform query without the streaming wrapper;
    ``final_sql(session)`` wraps it for a given transfer session.
    """

    kind: str
    user_query: SelectQuery
    spec: TransformSpec
    map_handle: str
    pass1_sql: str | None
    inner_sql: str
    cached_view: str | None = None

    def final_sql(self, session_id: str, command: str | None = None, args: str | None = None) -> str:
        """The full pass-2 query, streaming into ``session_id``."""
        extra = ""
        if command:
            extra = f", '{command}'"
            if args:
                extra += f", '{args}'"
        return (
            f"SELECT * FROM TABLE(stream_transfer(({self.inner_sql}), "
            f"'{session_id}'{extra})) AS __stream"
        )

    @property
    def needs_pass1(self) -> bool:
        return self.pass1_sql is not None

    def describe(self) -> str:
        lines = [f"rewrite kind: {self.kind}"]
        if self.pass1_sql:
            lines.append(f"pass 1 (distinct): {self.pass1_sql}")
        else:
            lines.append("pass 1: skipped (cache)")
        lines.append(f"pass 2 (transform): {self.inner_sql}")
        return "\n".join(lines)


class QueryRewriter:
    """Builds :class:`RewritePlan` objects, consulting the cache first."""

    def __init__(
        self,
        engine,
        transforms: TransformService,
        cache: "CacheManager | None" = None,
    ):
        self._engine = engine
        self._transforms = transforms
        self._cache = cache

    def plan(self, user_sql: str | SelectQuery, spec: TransformSpec) -> RewritePlan:
        """Produce the cheapest valid plan for this query+spec."""
        query = (
            self._engine.parse(user_sql) if isinstance(user_sql, str) else user_sql
        )
        base_sql = query.to_sql()

        if self._cache is not None:
            hit = self._cache.lookup_transformed(query, spec)
            if hit is not None:
                return self._plan_from_full_cache(query, spec, hit)
            handle = self._cache.lookup_recode_map(query, spec)
            if handle is not None:
                inner = self._transform_sql(base_sql, handle, spec)
                return RewritePlan(
                    kind="recode_map_cache",
                    user_query=query,
                    spec=spec,
                    map_handle=handle,
                    pass1_sql=None,
                    inner_sql=inner,
                )

        handle = f"__map_{next(_plan_counter)}"
        pass1 = self._pass1_sql(base_sql, spec) if spec.all_recoded else None
        inner = self._transform_sql(base_sql, handle, spec)
        return RewritePlan(
            kind="no_cache",
            user_query=query,
            spec=spec,
            map_handle=handle,
            pass1_sql=pass1,
            inner_sql=inner,
        )

    # ----------------------------------------------------------- SQL shapes

    @staticmethod
    def _pass1_sql(base_sql: str, spec: TransformSpec) -> str:
        """§2.1 phase 1: one scan computing all columns' local distincts,
        globalized by SELECT DISTINCT."""
        columns = ", ".join(f"'{c}'" for c in spec.all_recoded)
        return (
            "SELECT DISTINCT colName, colVal FROM "
            f"TABLE(local_distinct(({base_sql}), {columns})) AS __d"
        )

    @staticmethod
    def _transform_sql(base_sql: str, handle: str, spec: TransformSpec) -> str:
        """§2.1 phase 2 + §2.2: recode, then expansion codings, pipelined."""
        sql = base_sql
        if spec.all_recoded:
            columns = ", ".join(f"'{c}'" for c in spec.all_recoded)
            # The dirty-data policy rides into the UDF as a marker argument;
            # the default is omitted so cached plan text stays stable.
            policy = (
                f", 'on_unseen={spec.on_unseen}'" if spec.on_unseen != "null" else ""
            )
            sql = (
                f"SELECT * FROM TABLE(recode(({sql}), '{handle}', {columns}"
                f"{policy})) AS __recoded"
            )
        for udf_name, group, alias in (
            ("dummy_code", spec.dummy, "__dummy"),
            ("effect_code", spec.effect, "__effect"),
            ("orthogonal_code", spec.orthogonal, "__orthogonal"),
        ):
            if group:
                columns = ", ".join(f"'{c}'" for c in group)
                sql = (
                    f"SELECT * FROM TABLE({udf_name}(({sql}), '{handle}', "
                    f"{columns})) AS {alias}"
                )
        return sql

    # ----------------------------------------------------------- full cache

    def _plan_from_full_cache(self, query, spec, hit) -> RewritePlan:
        recode_map: RecodeMap = self._transforms.get(hit.map_handle)
        categorical = {c.lower() for c in hit.spec.all_recoded}
        select_list = ", ".join(hit.match.projected)
        sql = f"SELECT {select_list} FROM {hit.view_name}"
        if hit.match.extra_predicates:
            clauses = [
                self._recode_predicate(p, recode_map, categorical).to_sql()
                for p in hit.match.extra_predicates
            ]
            sql += " WHERE " + " AND ".join(clauses)
        projected_lower = {p.lower() for p in hit.match.projected}
        for udf_name, group, alias in (
            ("dummy_code", spec.dummy, "__dummy"),
            ("effect_code", spec.effect, "__effect"),
            ("orthogonal_code", spec.orthogonal, "__orthogonal"),
        ):
            kept = [c for c in group if c.lower() in projected_lower]
            if kept:
                columns = ", ".join(f"'{c}'" for c in kept)
                sql = (
                    f"SELECT * FROM TABLE({udf_name}(({sql}), "
                    f"'{hit.map_handle}', {columns})) AS {alias}"
                )
        return RewritePlan(
            kind="full_cache",
            user_query=query,
            spec=spec,
            map_handle=hit.map_handle,
            pass1_sql=None,
            inner_sql=sql,
            cached_view=hit.view_name,
        )

    @staticmethod
    def _recode_predicate(
        predicate: Expr, recode_map: RecodeMap, categorical: set[str]
    ) -> Expr:
        """Rewrite string literals compared against recoded columns into
        their integer codes (the cached view stores codes, not strings)."""

        def substitute(node: Expr) -> Expr | None:
            if isinstance(node, Comparison):
                column, literal = None, None
                if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
                    column, literal, flip = node.left, node.right, False
                elif isinstance(node.right, ColumnRef) and isinstance(node.left, Literal):
                    column, literal, flip = node.right, node.left, True
                else:
                    return None
                if column.name.lower() not in categorical:
                    return None
                if not isinstance(literal.value, str):
                    return None
                code = recode_map.code(column.name, literal.value)
                if code is None:
                    raise PlanError(
                        f"value {literal.value!r} of {column.name} is not in the "
                        "cached recode map; the cached result cannot answer this"
                    )
                new_literal = Literal(code)
                if flip:
                    return Comparison(node.op, new_literal, column)
                return Comparison(node.op, column, new_literal)
            if isinstance(node, InList):
                if (
                    isinstance(node.operand, ColumnRef)
                    and node.operand.name.lower() in categorical
                ):
                    values = []
                    for v in node.values:
                        if isinstance(v, Literal) and isinstance(v.value, str):
                            code = recode_map.code(node.operand.name, v.value)
                            if code is None:
                                raise PlanError(
                                    f"value {v.value!r} of {node.operand.name} "
                                    "missing from the cached recode map"
                                )
                            values.append(Literal(code))
                        else:
                            values.append(v)
                    return InList(node.operand, tuple(values), node.negated)
            return None

        return transform(predicate, substitute)
