"""Query rewriter (§4) and cached-result matching rules (§5).

"For ease of use, we provide a query rewriter outside the SQL systems": a
user hands it the data-preparation query, the transformation spec, and (for
streaming) the target ML invocation; the rewriter emits the UDF-extended SQL
that performs everything.  Before planning, it consults the cache exactly
the way materialized-view rewriting would (§5.3): a new query may reuse a
*fully transformed* cached result under the §5.1 conditions, or only the
cached *recode maps* under the weaker §5.2 conditions (saving one of the
two recoding passes).
"""

from repro.rewriter.matching import FullCacheMatch, QueryShape, RecodeMapMatch
from repro.rewriter.predicates import implies
from repro.rewriter.rewriter import QueryRewriter, RewritePlan

__all__ = [
    "FullCacheMatch",
    "QueryRewriter",
    "QueryShape",
    "RecodeMapMatch",
    "RewritePlan",
    "implies",
]
