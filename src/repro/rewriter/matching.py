"""Query-shape extraction and the §5.1 / §5.2 cache-matching conditions."""

from dataclasses import dataclass

from repro.common.errors import CatalogError
from repro.sql.ast import Join, NamedTable, SelectQuery
from repro.sql.expressions import (
    ColumnRef,
    Comparison,
    Expr,
    Star,
    conjuncts,
    transform,
)
from repro.rewriter.predicates import implies
from repro.transform.spec import TransformSpec


@dataclass(frozen=True)
class QueryShape:
    """The parts of a SELECT that the matching conditions talk about.

    Everything is *normalized*: aliases resolved to base-table names and
    lowercased, so the same logical query written with different aliases
    produces the same shape.
    """

    tables: frozenset[str]
    join_conditions: frozenset[str]  # canonical SQL of each equi-join conjunct
    predicates: tuple[Expr, ...]  # normalized non-join conjuncts
    projections: tuple[tuple[str, Expr], ...]  # (output name, normalized expr)

    def projection_exprs(self) -> dict[Expr, str]:
        """expr -> output name (first wins for duplicated expressions)."""
        mapping: dict[Expr, str] = {}
        for name, expr in self.projections:
            mapping.setdefault(expr, name)
        return mapping

    def projection_names(self) -> list[str]:
        return [name for name, _ in self.projections]


def extract_shape(query: SelectQuery, engine) -> QueryShape | None:
    """Build a shape, or None when the query uses constructs the §5 rules
    do not cover (subqueries, table UDFs, outer joins, grouping...)."""
    if query.group_by or query.having or query.distinct or query.order_by:
        return None
    if query.limit is not None:
        return None

    aliases: dict[str, str] = {}  # binding name -> table name (lower)
    pool: list[Expr] = []

    def collect(ref) -> bool:
        if isinstance(ref, NamedTable):
            aliases[ref.binding_name.lower()] = ref.name.lower()
            return True
        if isinstance(ref, Join) and ref.kind == "inner":
            if not (collect(ref.left) and collect(ref.right)):
                return False
            pool.extend(conjuncts(ref.condition))
            return True
        return False

    for ref in query.from_refs:
        if not collect(ref):
            return None

    try:
        schemas = {
            alias: engine.catalog.get_table(table).schema
            for alias, table in aliases.items()
        }
    except CatalogError:
        return None

    def resolve_unqualified(name: str) -> str | None:
        owners = [
            aliases[alias]
            for alias, schema in schemas.items()
            if schema.maybe_resolve(None, name) is not None
        ]
        return owners[0] if len(owners) == 1 else None

    failed: list[bool] = []

    def normalize_node(node: Expr) -> Expr | None:
        if isinstance(node, ColumnRef):
            if node.qualifier is not None:
                table = aliases.get(node.qualifier.lower())
                if table is None:
                    failed.append(True)
                    return node
            else:
                table = resolve_unqualified(node.name)
                if table is None:
                    failed.append(True)
                    return node
            return ColumnRef(table, node.name.lower())
        return None

    def normalize(expr: Expr) -> Expr | None:
        result = transform(expr, normalize_node)
        return None if failed else result

    pool = pool + conjuncts(query.where)
    join_conditions: set[str] = set()
    predicates: list[Expr] = []
    for predicate in pool:
        normalized = normalize(predicate)
        if normalized is None:
            return None
        if _is_join_condition(normalized):
            join_conditions.add(_canonical_join_sql(normalized))
        else:
            predicates.append(normalized)

    projections: list[tuple[str, Expr]] = []
    for i, item in enumerate(query.items):
        if isinstance(item.expr, Star):
            for alias in aliases:
                for column in schemas[alias]:
                    projections.append(
                        (column.name.lower(), ColumnRef(aliases[alias], column.name.lower()))
                    )
            continue
        normalized = normalize(item.expr)
        if normalized is None:
            return None
        if item.alias:
            name = item.alias.lower()
        elif isinstance(item.expr, ColumnRef):
            name = item.expr.name.lower()
        else:
            name = f"_c{i}"
        projections.append((name, normalized))

    return QueryShape(
        tables=frozenset(aliases.values()),
        join_conditions=frozenset(join_conditions),
        predicates=tuple(predicates),
        projections=tuple(projections),
    )


def _is_join_condition(expr: Expr) -> bool:
    if not (isinstance(expr, Comparison) and expr.op == "="):
        return False
    if not (isinstance(expr.left, ColumnRef) and isinstance(expr.right, ColumnRef)):
        return False
    return expr.left.qualifier != expr.right.qualifier


def _canonical_join_sql(expr: Comparison) -> str:
    left, right = expr.left.to_sql(), expr.right.to_sql()
    return f"{left} = {right}" if left <= right else f"{right} = {left}"


# ------------------------------------------------------------- §5.1 matching


@dataclass(frozen=True)
class FullCacheMatch:
    """A successful §5.1 match: how to answer the new query from the cache."""

    projected: tuple[str, ...]  # cached output columns, in new-query order
    extra_predicates: tuple[Expr, ...]  # rewritten onto cached output columns


def match_full_cache(new: QueryShape, cached: QueryShape) -> FullCacheMatch | None:
    """§5.1: can the new query be answered entirely from the cached result?

    Conditions (quoted from the paper, applied to normalized shapes):
    1. same tables in FROM, same join conditions *and predicates* — every
       cached predicate appears verbatim in the new query;
    2. projected fields are a subset of the cached projected fields;
    3. additional conjunctive predicates only touch cached projected fields.
    """
    if new.tables != cached.tables:
        return None
    if new.join_conditions != cached.join_conditions:
        return None
    cached_predicates = list(cached.predicates)
    extras: list[Expr] = []
    for predicate in new.predicates:
        if predicate in cached_predicates:
            cached_predicates.remove(predicate)
        else:
            extras.append(predicate)
    if cached_predicates:  # a cached predicate the new query dropped -> miss
        return None

    expr_to_name = cached.projection_exprs()
    projected: list[str] = []
    for _name, expr in new.projections:
        cached_name = expr_to_name.get(expr)
        if cached_name is None:
            return None
        projected.append(cached_name)

    rewritten_extras: list[Expr] = []
    for predicate in extras:
        rewritten = _rewrite_onto_cache(predicate, expr_to_name)
        if rewritten is None:
            return None
        rewritten_extras.append(rewritten)
    return FullCacheMatch(
        projected=tuple(projected), extra_predicates=tuple(rewritten_extras)
    )


def _rewrite_onto_cache(predicate: Expr, expr_to_name: dict[Expr, str]) -> Expr | None:
    """Re-root a predicate's column refs onto cached output columns."""
    failed: list[bool] = []

    def substitute(node: Expr) -> Expr | None:
        if isinstance(node, ColumnRef):
            name = expr_to_name.get(node)
            if name is None:
                failed.append(True)
                return node
            return ColumnRef(None, name)
        return None

    rewritten = transform(predicate, substitute)
    return None if failed else rewritten


# ------------------------------------------------------------- §5.2 matching


@dataclass(frozen=True)
class RecodeMapMatch:
    """A successful §5.2 match: the cached recode maps remain valid."""

    matched_predicates: int
    extra_predicates: int


def match_recode_map(
    new: QueryShape,
    new_spec: TransformSpec,
    cached: QueryShape,
    cached_spec: TransformSpec,
) -> RecodeMapMatch | None:
    """§5.2: may the new query reuse the cached recode maps?

    Conditions:
    1. same tables, same join conditions;
    2. for every cached predicate there is a new predicate on the same
       field(s) that is the same or logically stronger;
    3. the new query's projected categorical fields are a subset of the
       cached query's projected categorical fields;
    4. additional predicates are conjunctive (guaranteed: we only ever deal
       in conjunct lists here — disjunctions never reach this code because
       a top-level OR is a single unmatched conjunct on the cached side).
    """
    if new.tables != cached.tables:
        return None
    if new.join_conditions != cached.join_conditions:
        return None

    remaining = list(new.predicates)
    matched = 0
    for cached_predicate in cached.predicates:
        satisfied = None
        for candidate in remaining:
            if _referenced_fields(candidate) == _referenced_fields(
                cached_predicate
            ) and implies(candidate, cached_predicate):
                satisfied = candidate
                break
        if satisfied is None:
            return None
        remaining.remove(satisfied)
        matched += 1

    new_categoricals = _projected_categoricals(new, new_spec)
    cached_categoricals = _projected_categoricals(cached, cached_spec)
    if not new_categoricals <= cached_categoricals:
        return None
    return RecodeMapMatch(matched_predicates=matched, extra_predicates=len(remaining))


def _referenced_fields(expr: Expr) -> frozenset[tuple[str | None, str]]:
    return frozenset(expr.references())


def _projected_categoricals(shape: QueryShape, spec: TransformSpec) -> set[Expr]:
    """The normalized expressions of the projected categorical columns."""
    recoded = {c.lower() for c in spec.all_recoded}
    return {expr for name, expr in shape.projections if name in recoded}
