"""Per-session execution budgets: one deadline, one cancel flag, one clock.

The serving plane used to stack independent flat timeouts — 30s at
admission, 120s at the worker-pool scheduler, 10s at the spill governor,
30s per channel receive — so a wedged session could take minutes to
surface an error and a client deadline was invisible past the first gate.
A :class:`Budget` replaces the stack with a single monotonic deadline
created at ``create_session(deadline_s=...)``: every blocking wait derives
its timeout from :meth:`Budget.remaining` and raises a typed
:class:`~repro.common.errors.DeadlineExceeded` when the shared clock runs
out, so worst-case latency is bounded by the one budget the client asked
for.

The budget also carries the cooperative-cancel flag (a
:class:`threading.Event` plus wake callbacks so condition-variable waiters
are notified instead of timing out) and an optional shared
:class:`RetryTokenBucket` that caps fleet-wide retry amplification.

Everything here is off-by-default: ``Budget(deadline_s=None)`` never
expires, never emits ledger counters, and leaves every wait at its seed
flat timeout.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.common.errors import DeadlineExceeded, SessionCancelled


def clock_pair(clock) -> tuple[Callable[[], float], Callable[[], float]]:
    """Normalize a clock argument into ``(monotonic, wall)`` callables.

    Accepts a :class:`repro.sim.clock.Clock` (both callables come from it,
    so a virtual-time deployment journals virtual wall time) or a legacy
    bare monotonic callable (tests' fake clocks), which pairs with real
    :func:`time.time` exactly as before.
    """
    now = getattr(clock, "now", None)
    wall = getattr(clock, "wall", None)
    if callable(now) and callable(wall):
        return now, wall
    return clock, time.time


class RetryTokenBucket:
    """A shared token bucket wrapped around :class:`RetryPolicy` call sites.

    Each retry (HA-proxy handshake, producer append, consumer refetch)
    spends one token; when the bucket is dry the caller fails fast with
    :class:`RetriesExhaustedError` instead of amplifying an overloaded
    fleet.  Shared across sessions on purpose — retries are a *global*
    amplification factor, so the cap must be global too.

    Tokens refill continuously at ``refill_per_s`` up to ``capacity``
    (``refill_per_s=0`` makes the bucket a hard lifetime cap).  Ledger
    counters ``retry_budget.granted`` / ``retry_budget.denied`` are only
    emitted when a bucket exists, preserving seed byte-identity.
    """

    def __init__(
        self,
        capacity: int,
        refill_per_s: float = 0.0,
        ledger=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.refill_per_s = float(refill_per_s)
        self._ledger = ledger
        self._clock, _ = clock_pair(clock)
        self._tokens = float(capacity)
        self._last_refill = self._clock()
        self._lock = threading.Lock()
        self.granted = 0
        self.denied = 0

    def _refill_locked(self) -> None:
        if self.refill_per_s <= 0:
            return
        now = self._clock()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.refill_per_s)
            self._last_refill = now

    def try_acquire(self, n: int = 1) -> bool:
        """Spend ``n`` tokens; returns False (and counts a denial) when dry."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= n:
                self._tokens -= n
                self.granted += n
                if self._ledger is not None:
                    self._ledger.add("retry_budget.granted", n)
                return True
            self.denied += 1
            if self._ledger is not None:
                self._ledger.add("retry_budget.denied", 1)
            return False

    def available(self) -> int:
        with self._lock:
            self._refill_locked()
            return int(self._tokens)


class Budget:
    """Deadline + cancel flag + retry tokens for one session.

    Created once per session and threaded through every layer, so
    admission, scheduling, throttling, channel receives, broker fetches,
    and ML ingest all derive their waits from the same clock:

    - :meth:`remaining` — seconds left (None = unbounded).
    - :meth:`clamp` — min(flat per-call timeout, remaining), the derived
      wait every blocking call should use.
    - :meth:`check` — raise :class:`SessionCancelled` / :class:`DeadlineExceeded`
      if the flag is set / the clock ran out.
    - :meth:`cancel` — set the flag and run registered wake callbacks so
      condition-variable waiters wake immediately instead of timing out.

    A ``deadline_s=None`` budget never expires and is free: no counters,
    no behavior change — the seed path.
    """

    def __init__(
        self,
        deadline_s: float | None = None,
        session_id: str = "",
        retry_tokens: RetryTokenBucket | None = None,
        ledger=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.session_id = session_id
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self.retry_tokens = retry_tokens
        self._ledger = ledger
        self._clock, self._wall = clock_pair(clock)
        self._started = self._clock()
        self._deadline = None if deadline_s is None else self._started + float(deadline_s)
        self._cancelled = threading.Event()
        self.cancel_reason: str | None = None
        self._callbacks: list[Callable[[], None]] = []
        self._lock = threading.Lock()
        self._expired_counted = False

    # -- deadline ---------------------------------------------------------

    @property
    def expired(self) -> bool:
        return self._deadline is not None and self._clock() >= self._deadline

    def remaining(self) -> float | None:
        """Seconds until the deadline (>= 0.0), or None when unbounded."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def clamp(self, timeout_s: float | None) -> float | None:
        """Derive a wait bound: min(flat per-call timeout, budget remaining).

        ``None`` means "no bound" on either side, so an unbounded budget
        leaves the flat timeout untouched (seed behavior) and an unbounded
        flat timeout is capped by the budget alone.
        """
        rem = self.remaining()
        if rem is None:
            return timeout_s
        if timeout_s is None:
            return rem
        return min(timeout_s, rem)

    # -- cancellation -----------------------------------------------------

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def cancel(self, reason: str = "cancelled by client") -> bool:
        """Set the flag and wake registered waiters.  Idempotent; returns
        True only on the first call (when the counters fire)."""
        with self._lock:
            if self._cancelled.is_set():
                return False
            self.cancel_reason = reason
            self._cancelled.set()
            callbacks = list(self._callbacks)
        if self._ledger is not None:
            self._ledger.add("cancel.requested", 1)
        for cb in callbacks:
            try:
                cb()
            except Exception:  # wake callbacks must never mask the cancel
                pass
        return True

    def on_cancel(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Register a wake callback; returns a disposer.  Runs the callback
        immediately if the budget is already cancelled."""
        with self._lock:
            if not self._cancelled.is_set():
                self._callbacks.append(callback)

                def dispose() -> None:
                    with self._lock:
                        try:
                            self._callbacks.remove(callback)
                        except ValueError:
                            pass

                return dispose
        callback()
        return lambda: None

    # -- enforcement ------------------------------------------------------

    def check(self, what: str = "") -> None:
        """Raise the typed, non-retryable error if cancelled or expired."""
        if self._cancelled.is_set():
            where = f" during {what}" if what else ""
            raise SessionCancelled(
                f"session {self.session_id or '?'} cancelled{where}"
                f" ({self.cancel_reason or 'no reason given'})",
                session_id=self.session_id or None,
            )
        if self.expired:
            if not self._expired_counted:
                with self._lock:
                    if not self._expired_counted:
                        self._expired_counted = True
                        if self._ledger is not None:
                            self._ledger.add("deadline.expired", 1)
            where = f" at {what}" if what else ""
            raise DeadlineExceeded(
                f"session {self.session_id or '?'} exceeded its"
                f" {self.deadline_s:g}s deadline{where}",
                session_id=self.session_id or None,
            )

    # -- HA journal -------------------------------------------------------

    def to_settings(self) -> dict:
        """Wall-clock form for the coordinator journal, so a standby that
        adopts the session after takeover enforces the *remaining* budget,
        not a fresh one.  Both halves of the conversion come from the same
        injected clock pair — remaining time from the monotonic reading,
        the journaled instant from its paired wall reading — so a
        virtual-time takeover adopts the correct remainder instead of
        mixing virtual-monotonic arithmetic with real epoch time."""
        return {
            "deadline_s": self.deadline_s,
            "deadline_unix": None if self.deadline_s is None else self._wall()
            + (self._deadline - self._clock()),
        }

    @classmethod
    def from_settings(
        cls,
        settings: dict,
        session_id: str = "",
        retry_tokens: RetryTokenBucket | None = None,
        ledger=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Budget | None":
        """Rebuild an adopted session's budget from journaled settings.

        Returns None when the journal carries no deadline (feature off).
        An already-expired deadline comes back with a tiny positive
        remainder so the adopting coordinator raises DeadlineExceeded at
        the next wait instead of at construction time.  ``clock`` must be
        the same clock (pair) the journaling side used.
        """
        if settings.get("deadline_s") is None:
            return None
        _, wall = clock_pair(clock)
        deadline_unix = settings.get("deadline_unix")
        if deadline_unix is None:
            remaining = float(settings["deadline_s"])
        else:
            remaining = max(0.001, float(deadline_unix) - wall())
        budget = cls(
            deadline_s=remaining,
            session_id=session_id,
            retry_tokens=retry_tokens,
            ledger=ledger,
            clock=clock,
        )
        budget.deadline_s = float(settings["deadline_s"])  # report the original
        return budget


def budget_remaining(budget: Budget | None, timeout_s: float | None) -> float | None:
    """Module-level convenience: derive a wait bound from an optional budget."""
    if budget is None:
        return timeout_s
    return budget.clamp(timeout_s)


def budget_check(budget: Budget | None, what: str = "") -> None:
    """Module-level convenience: enforce an optional budget."""
    if budget is not None:
        budget.check(what)
