"""Deadlines, cooperative cancellation, and overload protection.

One :class:`Budget` per session replaces the serving plane's stacked flat
timeouts (admission 30s + scheduler 120s + governor 10s + 30s per channel
receive) with a single client-owned clock, carries the cooperative-cancel
flag every layer observes, and meters retries through a shared
:class:`RetryTokenBucket`.  See DESIGN.md §12.
"""

from repro.runtime.budget import (
    Budget,
    RetryTokenBucket,
    budget_check,
    budget_remaining,
)

__all__ = ["Budget", "RetryTokenBucket", "budget_check", "budget_remaining"]
