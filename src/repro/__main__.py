"""``python -m repro`` — a 30-second tour of the reproduction.

Builds the paper's deployment, runs the §1 scenario through all three
connection strategies, and prints the Figure-3 comparison.  For the full
experiment suite use ``python -m repro.bench.report``.
"""

from repro.bench.common import make_bench_setup
from repro.bench.figure3 import report, run_figure3


def main() -> None:
    print(__doc__)
    print("running the three connection strategies on the retail workload...\n")
    setup = make_bench_setup(num_users=600, num_carts=6_000)
    print(report(run_figure3(setup, iterations=2)))
    print()
    print("next steps:")
    print("  python -m repro.bench.report         # every figure and ablation")
    print("  python examples/quickstart.py        # the annotated walkthrough")
    print("  pytest tests/                        # the full test suite")


if __name__ == "__main__":
    main()
