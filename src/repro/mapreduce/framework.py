"""MapReduce execution: map -> shuffle/sort -> reduce over DFS text files."""

from collections.abc import Callable, Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.common.errors import ExecutionError
from repro.hdfs.filesystem import DistributedFileSystem
from repro.iofmt.inputformat import InputFormat, JobConf
from repro.iofmt.text import TextInputFormat
from repro.sql.types import estimate_value_bytes

#: mapper(record) -> iterable of (key, value)
Mapper = Callable[[object], Iterable[tuple]]
#: reducer(key, values) -> iterable of output lines (str)
Reducer = Callable[[object, list], Iterable[str]]


@dataclass
class JobCounters:
    """What one job did, in records and bytes."""

    map_input_records: int = 0
    map_output_records: int = 0
    reduce_input_groups: int = 0
    output_records: int = 0
    shuffle_bytes: int = 0
    output_files: list[str] = field(default_factory=list)


class MapReduceJob:
    """One configurable MapReduce job.

    ``mapper`` is required; ``reducer`` optional (map-only jobs write the
    mapper's *values* directly, one per line).  ``combiner`` runs per map
    task on locally grouped values, like Hadoop's.
    """

    def __init__(
        self,
        name: str,
        mapper: Mapper,
        reducer: Reducer | None = None,
        combiner: Reducer | None = None,
        num_reducers: int = 4,
        input_format: InputFormat | None = None,
        mappers_per_node: int = 9,
    ):
        if num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        self.name = name
        self.mapper = mapper
        self.reducer = reducer
        self.combiner = combiner
        self.num_reducers = num_reducers
        self.input_format = input_format or TextInputFormat()
        self.mappers_per_node = mappers_per_node

    def run(
        self,
        cluster: Cluster,
        dfs: DistributedFileSystem,
        input_path: str,
        output_dir: str,
        conf_props: dict | None = None,
    ) -> JobCounters:
        """Execute the job; output lands as part files under ``output_dir``."""
        if dfs.exists(output_dir):
            raise ExecutionError(f"output directory {output_dir} already exists")
        counters = JobCounters()
        conf = JobConf(dict(conf_props or {}, **{"input.path": input_path}), dfs=dfs)
        num_map_tasks = len(cluster.workers) * self.mappers_per_node
        splits = self.input_format.get_splits(conf, num_map_tasks)
        ledger = cluster.ledger
        ledger.add("mr.read", sum(s.length() for s in splits))

        def map_task(split) -> list[dict]:
            """Returns one dict (key -> list of values) per reduce partition."""
            buckets: list[dict] = [dict() for _ in range(self.num_reducers)]
            records_in = 0
            records_out = 0
            with self.input_format.create_record_reader(split, conf) as reader:
                for record in reader:
                    records_in += 1
                    for key, value in self.mapper(record):
                        records_out += 1
                        bucket = buckets[hash(key) % self.num_reducers]
                        bucket.setdefault(key, []).append(value)
            if self.combiner is not None:
                for i, bucket in enumerate(buckets):
                    combined: dict = {}
                    for key, values in bucket.items():
                        for out in self.combiner(key, values):
                            combined.setdefault(key, []).append(out)
                    buckets[i] = combined
            return [records_in, records_out, buckets]

        max_workers = max(len(cluster.workers), 1)
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            map_results = list(pool.map(map_task, splits))

        shuffle: list[dict] = [dict() for _ in range(self.num_reducers)]
        shuffle_bytes = 0
        for records_in, records_out, buckets in map_results:
            counters.map_input_records += records_in
            counters.map_output_records += records_out
            for i, bucket in enumerate(buckets):
                target = shuffle[i]
                for key, values in bucket.items():
                    shuffle_bytes += sum(
                        estimate_value_bytes(key) + estimate_value_bytes(v)
                        for v in values
                    )
                    target.setdefault(key, []).extend(values)
        counters.shuffle_bytes = shuffle_bytes
        ledger.add("mr.shuffle", shuffle_bytes)

        dfs.mkdirs(output_dir)
        worker_ips = [n.ip for n in cluster.workers]

        def reduce_task(index: int) -> tuple[int, int, str | None]:
            groups = shuffle[index]
            if self.reducer is None:
                lines = [str(v) for values in groups.values() for v in values]
                group_count = len(groups)
            else:
                lines = []
                group_count = 0
                for key in sorted(groups, key=_sort_key):
                    group_count += 1
                    lines.extend(self.reducer(key, groups[key]))
            if not lines:
                return group_count, 0, None
            path = f"{output_dir}/part-r-{index:05d}"
            client_ip = worker_ips[index % len(worker_ips)]
            text = "\n".join(lines) + "\n"
            dfs.write_text(path, text, client_ip=client_ip)
            ledger.add("mr.write", len(text.encode("utf-8")))
            return group_count, len(lines), path

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            reduce_results = list(pool.map(reduce_task, range(self.num_reducers)))

        for group_count, line_count, path in reduce_results:
            counters.reduce_input_groups += group_count
            counters.output_records += line_count
            if path is not None:
                counters.output_files.append(path)
        return counters


def _sort_key(key):
    """Total order over heterogeneous keys (None first, then by type name)."""
    return (key is not None, type(key).__name__, key if key is not None else 0)
