"""A MapReduce framework over the simulated DFS.

This is the substrate for the *naive* baseline's third-party transformation
hop: the paper's Figure 3 uses Jaql (which compiles to MapReduce) to recode
and dummy-code the SQL output sitting on HDFS.  The framework implements the
classic execution model — InputFormat splits, parallel map tasks, hash
shuffle with per-partition sort, reduce tasks writing replicated part files —
with byte accounting under the ``mr.*`` ledger categories.
"""

from repro.mapreduce.framework import JobCounters, MapReduceJob

__all__ = ["JobCounters", "MapReduceJob"]
