"""Caching of transformation results (§5).

Two cacheable artifacts, with very different reuse conditions:

* the **fully transformed data** (§5.1) — stored as a materialized view in
  the SQL engine at the *recoded* stage (dummy coding is re-applied on read:
  it is a cheap pipelined pass, and keeping recoded columns is what makes
  the paper's "WHERE gender = 'F'" follow-up answerable from the cache);
* the **recode maps** (§5.2) — reusable whenever the new query's rows are a
  subset of the cached query's, which the logically-stronger-predicates test
  guarantees; reuse skips pass 1 of the two-pass recoding.

Entries remember the catalog version of every base table at build time; any
insert into a base table bumps its version and silently invalidates the
entry (the paper's "assuming there is no data update" made safe).
"""

from repro.caching.cache import CacheManager, CacheStats

__all__ = ["CacheManager", "CacheStats"]
