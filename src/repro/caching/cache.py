"""The cache manager: storage, matching-based lookup, invalidation."""

import itertools
import threading
from dataclasses import dataclass

from repro.common.errors import CacheError, CatalogError, ParseError, PlanError
from repro.rewriter.matching import (
    FullCacheMatch,
    QueryShape,
    extract_shape,
    match_full_cache,
    match_recode_map,
)
from repro.sql.ast import SelectQuery
from repro.transform.recode import RecodeMap
from repro.transform.service import TransformService
from repro.transform.spec import TransformSpec


@dataclass
class CacheStats:
    """Hit/miss counters, per cache kind."""

    transformed_hits: int = 0
    transformed_misses: int = 0
    recode_map_hits: int = 0
    recode_map_misses: int = 0
    invalidations: int = 0


@dataclass
class _RecodeMapEntry:
    shape: QueryShape
    spec: TransformSpec
    handle: str
    base_versions: dict[str, int]


@dataclass
class _TransformedEntry:
    shape: QueryShape
    spec: TransformSpec
    view_name: str
    map_handle: str
    base_versions: dict[str, int]


@dataclass(frozen=True)
class TransformedHit:
    """A §5.1 cache hit: the view plus the rewrite recipe."""

    view_name: str
    map_handle: str
    spec: TransformSpec
    match: FullCacheMatch


class CacheManager:
    """Stores and matches cached recode maps and transformed results."""

    def __init__(self, engine, transforms: TransformService):
        self._engine = engine
        self._transforms = transforms
        self._recode_entries: list[_RecodeMapEntry] = []
        self._transformed_entries: list[_TransformedEntry] = []
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ----------------------------------------------------------------- store

    def store_recode_map(
        self, query: SelectQuery | str, spec: TransformSpec, recode_map: RecodeMap
    ) -> str:
        """Cache the recode maps of a just-transformed query; returns handle."""
        query = self._parse(query)
        shape = extract_shape(query, self._engine)
        if shape is None:
            raise CacheError(
                "query shape not cacheable (uses constructs outside the §5 rules)"
            )
        handle = f"__cached_map_{next(self._counter)}"
        self._transforms.register(handle, recode_map)
        entry = _RecodeMapEntry(
            shape=shape,
            spec=spec,
            handle=handle,
            base_versions=self._versions(shape),
        )
        with self._lock:
            self._recode_entries.append(entry)
        return handle

    def store_transformed(
        self,
        query: SelectQuery | str,
        spec: TransformSpec,
        view_name: str,
        map_handle: str,
    ) -> None:
        """Record an engine-materialized recoded result as reusable."""
        query = self._parse(query)
        shape = extract_shape(query, self._engine)
        if shape is None:
            raise CacheError(
                "query shape not cacheable (uses constructs outside the §5 rules)"
            )
        if not self._engine.catalog.has_table(view_name):
            raise CacheError(f"view {view_name!r} is not in the catalog")
        entry = _TransformedEntry(
            shape=shape,
            spec=spec,
            view_name=view_name,
            map_handle=map_handle,
            base_versions=self._versions(shape),
        )
        with self._lock:
            self._transformed_entries.append(entry)

    # ---------------------------------------------------------------- lookup

    def lookup_transformed(
        self, query: SelectQuery | str, spec: TransformSpec
    ) -> TransformedHit | None:
        """§5.1 lookup: a view answering the query entirely, or None."""
        shape = self._shape_or_none(query)
        if shape is None:
            self.stats.transformed_misses += 1
            return None
        with self._lock:
            entries = list(self._transformed_entries)
        for entry in entries:
            if not self._fresh(entry.base_versions):
                continue
            if not self._spec_compatible(spec, entry.spec):
                continue
            match = match_full_cache(shape, entry.shape)
            if match is not None:
                self.stats.transformed_hits += 1
                return TransformedHit(
                    view_name=entry.view_name,
                    map_handle=entry.map_handle,
                    spec=entry.spec,
                    match=match,
                )
        self.stats.transformed_misses += 1
        return None

    def lookup_recode_map(
        self, query: SelectQuery | str, spec: TransformSpec
    ) -> str | None:
        """§5.2 lookup: a reusable recode-map handle, or None."""
        shape = self._shape_or_none(query)
        if shape is None:
            self.stats.recode_map_misses += 1
            return None
        with self._lock:
            entries = list(self._recode_entries)
        for entry in entries:
            if not self._fresh(entry.base_versions):
                continue
            if match_recode_map(shape, spec, entry.shape, entry.spec) is not None:
                self.stats.recode_map_hits += 1
                return entry.handle
        self.stats.recode_map_misses += 1
        return None

    def peek_kind(self, query: SelectQuery | str, spec: TransformSpec) -> str | None:
        """Which cache tier *would* answer this query — without touching the
        hit/miss counters.  Returns ``"transformed"``, ``"recode_map"``, or
        None.  The §6 recovery ladder uses this to decide whether the
        replay-from-cache tier is available before committing to it."""
        shape = self._shape_or_none(query)
        if shape is None:
            return None
        with self._lock:
            transformed = list(self._transformed_entries)
            recode = list(self._recode_entries)
        for entry in transformed:
            if not self._fresh(entry.base_versions):
                continue
            if not self._spec_compatible(spec, entry.spec):
                continue
            if match_full_cache(shape, entry.shape) is not None:
                return "transformed"
        for entry in recode:
            if not self._fresh(entry.base_versions):
                continue
            if match_recode_map(shape, spec, entry.shape, entry.spec) is not None:
                return "recode_map"
        return None

    # ----------------------------------------------------------- maintenance

    def invalidate_table(self, table_name: str) -> int:
        """Explicitly drop every entry built over ``table_name``."""
        name = table_name.lower()
        dropped = 0
        with self._lock:
            before = len(self._recode_entries) + len(self._transformed_entries)
            self._recode_entries = [
                e for e in self._recode_entries if name not in e.shape.tables
            ]
            self._transformed_entries = [
                e for e in self._transformed_entries if name not in e.shape.tables
            ]
            dropped = before - len(self._recode_entries) - len(self._transformed_entries)
        self.stats.invalidations += dropped
        return dropped

    def entry_counts(self) -> tuple[int, int]:
        """(recode-map entries, transformed entries)."""
        with self._lock:
            return len(self._recode_entries), len(self._transformed_entries)

    # ------------------------------------------------------------- internals

    def _parse(self, query: SelectQuery | str) -> SelectQuery:
        return self._engine.parse(query) if isinstance(query, str) else query

    def _shape_or_none(self, query: SelectQuery | str) -> QueryShape | None:
        # Only the typed "this query has no cacheable shape" failures read as
        # a miss; a genuine defect (TypeError, AttributeError, ...) in shape
        # extraction must propagate, not silently disable the cache.
        try:
            return extract_shape(self._parse(query), self._engine)
        except (ParseError, PlanError, CatalogError, CacheError):
            return None

    def _versions(self, shape: QueryShape) -> dict[str, int]:
        return {
            table: self._engine.catalog.get_entry(table).version
            for table in shape.tables
        }

    def _fresh(self, versions: dict[str, int]) -> bool:
        for table, version in versions.items():
            try:
                if self._engine.catalog.get_entry(table).version != version:
                    return False
            except CatalogError:
                return False  # base table dropped since caching = stale
        return True

    @staticmethod
    def _spec_compatible(new: TransformSpec, cached: TransformSpec) -> bool:
        """The cached (recoded-stage) view can serve the new spec when every
        column the new spec recodes was recoded in the cached run."""
        cached_recoded = {c.lower() for c in cached.all_recoded}
        return {c.lower() for c in new.all_recoded} <= cached_recoded
