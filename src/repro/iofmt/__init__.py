"""Hadoop-style input interfaces: InputFormat / InputSplit / RecordReader.

The paper's generality claim is that its transfer method works with "any big
ML system that uses Hadoop InputFormats to ingest input data".  This package
is that interface in miniature: the ML job framework (:mod:`repro.ml`) and
the MapReduce substrate (:mod:`repro.mapreduce`) consume *only* this API, so
swapping the DFS-backed :class:`TextInputFormat` for the live
``SQLStreamInputFormat`` (:mod:`repro.transfer`) is the single job-config
change the paper advertises.
"""

from repro.iofmt.inputformat import InputFormat, InputSplit, JobConf, RecordReader
from repro.iofmt.text import CsvInputFormat, FileSplit, TextInputFormat

__all__ = [
    "CsvInputFormat",
    "FileSplit",
    "InputFormat",
    "InputSplit",
    "JobConf",
    "RecordReader",
    "TextInputFormat",
]
