"""Abstract InputFormat contract (Hadoop's, in miniature)."""

from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import Any


class JobConf:
    """A job configuration: a string-keyed property bag plus shared objects.

    Hadoop passes everything through the ``Configuration``; we keep the same
    shape so input formats stay decoupled from the systems that run them.
    Values that are live objects (a DFS handle, a coordinator) go into
    :attr:`objects` — the equivalent of Hadoop's service injection via
    side-channel singletons, made explicit.
    """

    def __init__(self, props: dict[str, Any] | None = None, **objects: Any):
        self.props: dict[str, Any] = dict(props or {})
        self.objects: dict[str, Any] = dict(objects)

    def get(self, key: str, default: Any = None) -> Any:
        """Property lookup with default."""
        return self.props.get(key, default)

    def set(self, key: str, value: Any) -> None:
        """Property assignment."""
        self.props[key] = value

    def get_object(self, name: str, default: Any = None) -> Any:
        """Optional shared-object lookup (None when not configured)."""
        return self.objects.get(name, default)

    def require_object(self, name: str) -> Any:
        """Fetch a shared object, raising a clear error when missing."""
        try:
            return self.objects[name]
        except KeyError:
            raise KeyError(
                f"job configuration is missing required object {name!r}; "
                f"available: {sorted(self.objects)}"
            ) from None


class InputSplit(ABC):
    """One unit of input, consumed by exactly one worker."""

    @abstractmethod
    def locations(self) -> tuple[str, ...]:
        """Node IPs where reading this split is local (may be empty)."""

    @abstractmethod
    def length(self) -> int:
        """Approximate byte length (for scheduling/ordering)."""


class RecordReader(ABC):
    """Iterates the records of one split."""

    @abstractmethod
    def __iter__(self) -> Iterator[Any]:
        """Yield records until the split is exhausted."""

    def close(self) -> None:
        """Release resources (default: nothing to do)."""

    def __enter__(self) -> "RecordReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InputFormat(ABC):
    """Splits the input and creates readers — the whole ingestion contract."""

    @abstractmethod
    def get_splits(self, conf: JobConf, num_splits: int) -> list[InputSplit]:
        """Divide the input into at most ``num_splits`` splits.

        ``num_splits`` is a hint, exactly as in Hadoop: formats may return
        fewer (small input) or a fixed number dictated by the source (the
        streaming format returns one split per matched channel).
        """

    @abstractmethod
    def create_record_reader(self, split: InputSplit, conf: JobConf) -> RecordReader:
        """Open a reader over one split."""
