"""Line- and CSV-oriented input formats over the distributed file system.

The split/line-boundary semantics are Hadoop's classic ones: splits are byte
ranges; a reader whose split starts mid-file discards the first (partial)
line, and every reader finishes the line that straddles its split's end.
Together the readers of a file yield each line exactly once.
"""

from dataclasses import dataclass

from repro.hdfs.filesystem import DistributedFileSystem
from repro.iofmt.inputformat import InputFormat, InputSplit, JobConf, RecordReader

MIN_SPLIT_BYTES = 64 * 1024


@dataclass(frozen=True)
class FileSplit(InputSplit):
    """A byte range of one DFS file, with replica hosts for locality."""

    path: str
    start: int
    split_length: int
    hosts: tuple[str, ...] = ()

    def locations(self) -> tuple[str, ...]:
        return self.hosts

    def length(self) -> int:
        return self.split_length


class LineRecordReader(RecordReader):
    """Yields text lines of one :class:`FileSplit` per Hadoop semantics."""

    def __init__(self, dfs: DistributedFileSystem, split: FileSplit, client_ip: str | None = None):
        self._split = split
        self._reader = dfs.open(split.path, client_ip=client_ip)
        self._reader.seek(split.start)
        self._buffer = b""
        self._eof = False
        self._consumed = 0  # bytes of the file consumed past split.start
        if split.start > 0:
            self._discard_partial_first_line()

    def __iter__(self):
        # Hadoop's rule: keep reading while the line *starts* at a position
        # <= the split end (so the line straddling — or starting exactly at —
        # the boundary is read here); the next split's reader discards its
        # first partial line, which is exactly that one.  Net effect: every
        # line of the file is yielded by exactly one reader.
        while True:
            start_offset = self._consumed
            if start_offset > self._split.split_length:
                return
            line = self._read_line()
            if line is None:
                return
            yield line

    def close(self) -> None:
        self._reader.close()

    # ------------------------------------------------------------- internals

    def _fill(self) -> bool:
        if self._eof:
            return False
        chunk = self._reader.read(64 * 1024)
        if not chunk:
            self._eof = True
            return False
        self._buffer += chunk
        return True

    def _read_line(self) -> str | None:
        while b"\n" not in self._buffer:
            if not self._fill():
                if self._buffer:
                    line = self._buffer
                    self._consumed += len(line)
                    self._buffer = b""
                    return line.decode("utf-8")
                return None
        raw, self._buffer = self._buffer.split(b"\n", 1)
        self._consumed += len(raw) + 1
        return raw.decode("utf-8")

    def _discard_partial_first_line(self) -> None:
        discarded = self._read_line()
        if discarded is None:
            self._eof = True


class TextInputFormat(InputFormat):
    """Splits DFS text files into byte ranges and reads them line by line.

    Required configuration: ``input.path`` property (file or directory) and
    a ``dfs`` object.  Optional: ``client.ip`` for replica locality of the
    reading process.
    """

    def get_splits(self, conf: JobConf, num_splits: int) -> list[InputSplit]:
        dfs: DistributedFileSystem = conf.require_object("dfs")
        path = conf.get("input.path")
        if path is None:
            raise ValueError("TextInputFormat requires the 'input.path' property")
        files = dfs.list_files(path)
        total = sum(dfs.status(f).length for f in files)
        if total == 0 or num_splits < 1:
            return []
        target = max(total // num_splits, MIN_SPLIT_BYTES, 1)
        splits: list[InputSplit] = []
        for file_path in files:
            length = dfs.status(file_path).length
            locations = dfs.block_locations(file_path)
            offset = 0
            while offset < length:
                chunk = min(target, length - offset)
                # Hadoop's 1.1 slack rule: avoid a tiny tail split.
                if length - offset - chunk < target * 0.1:
                    chunk = length - offset
                hosts = self._hosts_for(locations, offset)
                splits.append(FileSplit(file_path, offset, chunk, hosts))
                offset += chunk
        return splits

    def create_record_reader(self, split: InputSplit, conf: JobConf) -> RecordReader:
        dfs: DistributedFileSystem = conf.require_object("dfs")
        if not isinstance(split, FileSplit):
            raise TypeError(f"TextInputFormat cannot read {type(split).__name__}")
        return LineRecordReader(dfs, split, client_ip=conf.get("client.ip"))

    @staticmethod
    def _hosts_for(locations, offset: int) -> tuple[str, ...]:
        for loc in locations:
            if loc.offset <= offset < loc.offset + loc.length:
                return loc.hosts
        return ()


class CsvRecordReader(RecordReader):
    """Wraps a line reader, splitting each line on a delimiter."""

    def __init__(self, inner: RecordReader, delimiter: str):
        self._inner = inner
        self._delimiter = delimiter

    def __iter__(self):
        for line in self._inner:
            if line:
                yield line.split(self._delimiter)

    def close(self) -> None:
        self._inner.close()


class CsvInputFormat(TextInputFormat):
    """Text format whose records are delimiter-split field lists.

    Optional property ``csv.delimiter`` (default ``,``).
    """

    def create_record_reader(self, split: InputSplit, conf: JobConf) -> RecordReader:
        inner = super().create_record_reader(split, conf)
        return CsvRecordReader(inner, conf.get("csv.delimiter", ","))
