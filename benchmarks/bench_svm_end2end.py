"""In-text §7 number: DFS read + 10 SVM-SGD iterations ~= 774 s.

Shape assertions: the simulated ingest lands near the paper's 46 s, training
dominates ingest (the paper's point that "if the ML algorithm takes a long
time ... whether using HDFS or streaming makes little difference"), and the
total lands in the paper's ballpark.
"""

from repro.bench.svm_end2end import report, run_svm_end2end


def test_svm_end2end(benchmark, bench_setup):
    row = benchmark.pedantic(
        lambda: run_svm_end2end(bench_setup, iterations=10), rounds=1, iterations=1
    )
    assert 35.0 <= row.ingest_sim_seconds <= 60.0
    assert row.train_sim_seconds > 5 * row.ingest_sim_seconds
    assert 550.0 <= row.total_sim_seconds <= 1000.0, (
        f"total {row.total_sim_seconds:.0f}s vs paper 774s"
    )
    print()
    print(report(row))
