"""Overload-protection smoke: deadlines bite, shedding is typed, nothing wedges.

Acceptance bars for the budget/cancel/shedding layer (Ablation K):

- A two-point deadline sweep shows enforcement: at a deadline below the
  session floor every session fails with the typed ``DeadlineExceeded``;
  with no deadline every session completes (the seed control).
- The chaos acceptance run (sessions at 4x+ the worker-slot count, mixed
  budgets, two priority tiers, seeded faults, mid-flight cancels) passes
  :func:`~repro.bench.overload.check_acceptance`: some sessions complete,
  tight deadlines surface as typed outcomes, every failure is a typed
  serving error, completed weights are bit-identical to solo re-runs, no
  serving thread outlives the run, and no armed session overshoots its own
  budget by more than the enforcement grace.
- ``BENCH_OVERLOAD_JSON`` (when set) receives the JSON results artifact.
"""

import os

from repro.bench.overload import (
    DEFAULT_DEADLINES,
    check_acceptance,
    persist_results,
    report,
    run_acceptance,
    run_deadline_sweep,
)

import pytest


@pytest.mark.timeout(300)
def test_overload_smoke(benchmark):
    sessions = int(os.environ.get("OVERLOAD_SMOKE_SESSIONS", "16"))
    sweep_points = (DEFAULT_DEADLINES[0], None)

    def run():
        rows = run_deadline_sweep(
            deadlines=sweep_points, num_sessions=sessions, num_clients=12
        )
        acceptance, load_report = run_acceptance(
            num_sessions=max(sessions, 16), num_clients=16
        )
        return rows, acceptance, load_report

    rows, acceptance, load_report = benchmark.pedantic(run, rounds=1, iterations=1)

    tight, unbounded = rows
    assert tight.deadline_exceeded > 0, (
        "a deadline below the session floor must produce typed expiries"
    )
    assert tight.other_failures == 0
    assert unbounded.completed == unbounded.num_sessions, (
        "the unbounded control point must complete every session"
    )

    problems = check_acceptance(acceptance)
    assert not problems, "; ".join(problems)

    out_path = os.environ.get("BENCH_OVERLOAD_JSON")
    if out_path:
        persist_results(rows, out_path, acceptance=acceptance)
    print()
    print(report(rows, acceptance))
