"""Shared fixtures for the benchmark suite."""

import pytest

from repro.bench.common import make_bench_setup


@pytest.fixture()
def bench_setup():
    """A fresh paper-topology deployment with the retail workload."""
    return make_bench_setup()


@pytest.fixture()
def small_bench_setup():
    """A smaller workload for per-stage micro benchmarks."""
    return make_bench_setup(num_users=600, num_carts=6_000)
