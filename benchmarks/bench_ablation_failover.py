"""Ablation H: coordinator failover — kill the leader at every handshake
point, keep the model bit-identical, re-stream nothing.

Shape: every HA row trains the exact same model as the single-coordinator
baseline; every kill point records exactly one takeover; ``stream.retry``
is zero everywhere (control-plane failover is data-plane free — the new
leader re-attaches live channels instead of replaying them); the journal
is the only standing cost of HA, and the fault-free HA row moves the same
stream bytes as the baseline.
"""

from repro.bench.ablation_failover import report, run_failover_ablation


def test_failover_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_failover_ablation(
            points=("none", "pre_registration", "post_split_plan", "mid_stream")
        ),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 5  # baseline + 4 HA points
    baseline, by_point = rows[0], {r.point: r for r in rows[1:]}

    # Weight-for-weight identity at every kill point.
    assert all(r.model_ok for r in rows)
    assert len({r.rows for r in rows}) == 1 and baseline.rows > 0

    # Control-plane failover is data-plane free: nothing is ever re-streamed
    # (unlike Ablation F's worker kills, which must replay blocks).
    assert all(r.retry_bytes == 0 for r in rows)

    # Exactly one takeover per kill point; none without a kill.
    assert baseline.failovers == 0 and by_point["none"].failovers == 0
    for point in ("pre_registration", "post_split_plan", "mid_stream"):
        assert by_point[point].failovers == 1

    # The journal is the only standing cost of HA: the fault-free HA row
    # moves the same stream bytes as the no-HA baseline, plus journal bytes.
    assert baseline.journal_bytes == 0
    assert by_point["none"].journal_bytes > 0
    assert by_point["none"].transfer_bytes == baseline.transfer_bytes

    print()
    print(report(rows))
