"""Ablation B: degree of parallelism k (m = n*k) and locality placement.

Shape: the split count scales as n*k, every split is local under the
paper's colocated SQL/ML deployment, the round-robin fan-out keeps
partitions balanced, and the row count is invariant in k.
"""

from repro.bench.ablation_parallelism import report, run_parallelism_ablation

NUM_SQL_WORKERS = 4  # the paper's testbed: 4 worker servers


def test_parallelism_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_parallelism_ablation(ks=(1, 2, 6)), rounds=1, iterations=1
    )
    for row in rows:
        assert row.num_splits == NUM_SQL_WORKERS * row.k
        assert row.local_splits == row.num_splits  # colocated deployment
        assert row.min_partition > 0
        # Round-robin keeps partitions balanced (the residual imbalance is
        # workload skew in how many qualifying rows each SQL worker holds).
        assert row.max_partition <= 1.5 * row.min_partition
    assert len({r.rows for r in rows}) == 1
    print()
    print(report(rows))
