"""Ablation G: checkpoint-interval sweep x ML-stage fault recovery (§6).

Shape: every run — resumed, replayed, or fully restarted — delivers the
exact fault-free model; fault-free transfer bytes are invariant at every
interval (checkpoint traffic rides its own counters); in-place resume
recovers without a pipeline restart while the conservative baseline pays
a whole extra attempt.
"""

from repro.bench.ablation_checkpoint import report, run_checkpoint_ablation


def test_checkpoint_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_checkpoint_ablation(num_users=200, num_carts=2_000),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 7
    by_mode = {r.mode: r for r in rows}

    # Weight-for-weight identity: every recovery mode reproduces the
    # fault-free model exactly.
    assert all(r.model_matches for r in rows)

    # Fault-free byte invariance at every checkpoint interval: the stream
    # transfer counters never move; only checkpoint.write does.
    clean = by_mode["clean-off"]
    for mode in ("clean-ckpt-1", "clean-ckpt-4"):
        assert by_mode[mode].stream_bytes == clean.stream_bytes
        assert by_mode[mode].checkpoint_bytes > 0
    assert clean.checkpoint_bytes == 0

    # Denser checkpointing writes more snapshot bytes.
    assert by_mode["clean-ckpt-1"].checkpoint_bytes > by_mode["clean-ckpt-4"].checkpoint_bytes

    # Tier 1: the kill is absorbed in place — no pipeline restart.
    for mode in ("resume-ckpt-1", "resume-ckpt-4"):
        assert by_mode[mode].tier == "resume_checkpoint"
        assert by_mode[mode].attempts == 1
        assert by_mode[mode].train_attempts == 2

    # Tier 3: with checkpointing off, the ladder replays the rewritten
    # query — replay traffic rides its dedicated counter.
    assert by_mode["replay-query"].tier == "replay_query"
    assert by_mode["replay-query"].attempts == 1
    assert by_mode["replay-query"].replay_bytes > 0

    # The conservative baseline re-runs the whole pipeline instead.
    assert by_mode["full-restart"].tier == "full_restart"
    assert by_mode["full-restart"].attempts == 2
    assert by_mode["full-restart"].stream_bytes > clean.stream_bytes

    print()
    print(report(rows))
