"""Chaos-search smoke: bounded schedule exploration, shrinking, determinism.

Acceptance bars for the virtual-time chaos harness (Ablation L):

- A bounded exploration (wall-capped, default 60s) samples seeded fault
  schedules against the HA serving scenario and every sampled schedule
  upholds the standing invariants — the robustness stack recovers from
  everything the sampler throws at it.  Any failure is shrunk to a
  minimal replayable schedule and published as an artifact.
- Virtual time pays: the exploration covers an order of magnitude more
  simulated seconds than it spends in wall time.
- Determinism spot check: re-running one sampled schedule reproduces a
  byte-identical fingerprint.
- The shrinking demo plants four survivable decoys around one action that
  violates the strict all-sessions-complete bar; ddmin must isolate that
  single action, and its JSON form must replay with the same fingerprint.
- ``BENCH_CHAOSSEARCH_JSON`` (when set) receives the results artifact;
  ``CHAOS_MIN_SCHEDULE_JSON`` receives the minimized schedule(s).
"""

import json
import os

import pytest

from repro.sim import ChaosExplorer, FaultAction, FaultSchedule

#: The shrinking demo's planted schedule: decoys the stack survives plus
#: the one action that fails a session even alone.
PLANTED = FaultSchedule(
    seed=55,
    actions=(
        FaultAction("send_drop", rate=0.05),
        FaultAction("lease_expire", site="create_session", at=0),
        FaultAction("kill_ml", site="3", at=1),
        FaultAction("send_stall", rate=0.05, seconds=0.5),
        FaultAction("handshake_drop", site="split_plan"),
    ),
)


@pytest.mark.timeout(300)
def test_chaos_search_smoke(benchmark):
    rounds = int(os.environ.get("CHAOS_SEARCH_ROUNDS", "8"))
    wall_budget_s = float(os.environ.get("CHAOS_SEARCH_WALL_S", "60"))
    base_seed = int(os.environ.get("CHAOS_SEARCH_SEED", "11"))

    def run():
        explorer = ChaosExplorer(base_seed=base_seed)
        report = explorer.explore(rounds=rounds, wall_budget_s=wall_budget_s)
        # Determinism spot check: the first sampled schedule, re-run.
        probe = explorer.sample_schedule(0)
        fingerprints = {explorer.run(probe).fingerprint() for _ in range(2)}
        # Shrinking demo against the strict bar.
        strict = ChaosExplorer(require_all_complete=True)
        minimized, min_result = strict.shrink(PLANTED)
        replay_fp = strict.replay(minimized.to_json()).fingerprint()
        return report, fingerprints, minimized, min_result, replay_fp

    report, fingerprints, minimized, min_result, replay_fp = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    summary = report.summary()
    assert summary["rounds_run"] >= 1, "the wall budget starved the search"
    assert summary["total_faults_injected"] >= 1
    # Everything the sampler found must have been survived (or shrunk).
    unshrunk = [s.describe() for s, _ in report.failures]
    assert not unshrunk, f"sampled schedules violated invariants: {unshrunk}"
    # The virtual-time dividend: simulated seconds >> wall seconds.
    assert summary["virtual_seconds_total"] > summary["wall_seconds"], (
        "virtual time should outrun the wall clock"
    )

    assert len(fingerprints) == 1, "identical (seed, schedule) must replay identically"

    assert len(minimized.actions) == 1, (
        f"ddmin left {len(minimized.actions)} actions: {minimized.describe()}"
    )
    assert minimized.actions[0].kind == "kill_ml"
    assert min_result.failed
    assert replay_fp == min_result.fingerprint(), (
        "the minimized schedule's JSON replay diverged"
    )

    out_path = os.environ.get("BENCH_CHAOSSEARCH_JSON")
    if out_path:
        doc = {
            "search": summary,
            "runs": [
                {
                    "schedule": r.schedule.describe(),
                    "virtual_seconds": r.virtual_seconds,
                    "wall_seconds": r.wall_seconds,
                    "events": len(r.events),
                    "failed": r.failed,
                }
                for r in report.runs
            ],
            "determinism": {"runs": 2, "distinct_fingerprints": len(fingerprints)},
            "shrink_demo": {
                "planted_actions": len(PLANTED.actions),
                "minimized_actions": len(minimized.actions),
                "minimized": json.loads(minimized.to_json()),
                "violations": min_result.violations,
            },
        }
        with open(out_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)

    schedule_path = os.environ.get("CHAOS_MIN_SCHEDULE_JSON")
    if schedule_path:
        # The demo's minimized schedule plus any minimized search failures:
        # each entry replays via ``ChaosExplorer.replay(json.dumps(entry))``.
        entries = [json.loads(minimized.to_json())] + [
            json.loads(s.to_json()) for s, _ in report.failures
        ]
        with open(schedule_path, "w") as fh:
            json.dump(entries, fh, indent=2, sort_keys=True)

    print()
    print(
        f"chaos search: {summary['rounds_run']}/{summary['rounds_requested']} rounds, "
        f"{summary['total_faults_injected']} faults, "
        f"{summary['virtual_seconds_total']:.1f} virtual s in "
        f"{summary['wall_seconds']:.2f} wall s, "
        f"{len(report.failures)} invariant violations"
    )
    print(
        f"shrink demo: {len(PLANTED.actions)} planted -> "
        f"{len(minimized.actions)} action ({minimized.actions[0].describe()}), "
        f"replay fingerprint match={replay_fp == min_result.fingerprint()}"
    )
