"""Ablation F: chaos — recovery overhead/goodput vs injected failure rate.

Shape: every path delivers the exact same rows at every rate (recovery is
exactly-once end to end); the rate-0 rows are byte-for-byte invariant with
replay counters at zero (the Figure 3/4 protection); injected faults only
ever show up in the dedicated retry counters.
"""

from repro.bench.ablation_faults import report, run_fault_ablation


def test_fault_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fault_ablation(rates=(0.0, 0.05)),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 6  # 3 paths x 2 rates

    # Exactly-once under chaos: the same logical rows arrive on every path
    # at every fault rate.
    assert len({r.rows for r in rows}) == 1
    assert rows[0].rows > 0

    # Rate-0 invariance: recovery installed but inert — no replay traffic,
    # no restarts, single attempt, nothing injected.
    for r in rows:
        if r.rate == 0.0:
            assert r.retry_bytes == 0
            assert r.partial_restarts == 0
            assert r.attempts == 1
            assert r.faults == 0

    # The two streaming paths move identical fault-free bytes (the §6
    # machinery costs nothing when nothing fails).
    clean_stream = {
        r.transfer_bytes for r in rows if r.rate == 0.0 and r.path != "broker-replay"
    }
    assert len(clean_stream) == 1

    # Chaos traffic lands only in the retry counters.
    clean_bytes = {r.path: r.transfer_bytes for r in rows if r.rate == 0.0}
    for r in rows:
        if r.rate == 0.0:
            continue
        if r.path == "broker-replay":
            # Replayed fetches never touch broker.out: delivered bytes are
            # byte-for-byte the clean baseline at any duplicate rate.
            assert r.transfer_bytes == clean_bytes[r.path]
            assert r.attempts == 1
        elif r.path == "stream-partial":
            # The killed epoch's completed blocks stay in stream.sent; the
            # whole replay goes to stream.retry — never more than clean.
            assert r.attempts == 1
            assert r.transfer_bytes <= clean_bytes[r.path]
            if r.faults:
                assert r.partial_restarts > 0
                assert r.retry_bytes > 0
        else:  # pipeline-full re-ships everything per extra attempt
            assert clean_bytes[r.path] <= r.transfer_bytes
            assert r.transfer_bytes <= r.attempts * clean_bytes[r.path]
            assert r.retry_bytes == 0
            if r.faults:
                assert r.attempts > 1

    print()
    print(report(rows))
