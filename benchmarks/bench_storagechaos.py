"""Storage-chaos smoke: self-healing storage under sampled + pinned faults.

Acceptance bars for the self-healing storage plane (Ablation M):

- The pinned acceptance schedule — replica corruption + one datanode kill
  + an ENOSPC window — runs against the DFS-backed training scenario on
  three seeds: every session trains (weight-identical to solo, checked by
  the explorer's invariants), replication is restored at quiescence, all
  failures are typed, no thread wedges.
- A bounded exploration samples schedules that now include the storage
  action kinds (``dfs_corrupt``, ``dfs_read_error``, ``dfs_kill_datanode``,
  ``dfs_enospc``); every sampled schedule upholds the standing invariants,
  and any failure is shrunk to a minimal replayable schedule.
- Determinism spot check: one acceptance run replays byte-identically,
  including through its JSON round trip.
- ``BENCH_STORAGE_JSON`` (when set) receives the results artifact;
  ``STORAGE_MIN_SCHEDULE_JSON`` receives minimized failing schedule(s),
  written only when there are failures.
"""

import json
import os

import pytest

from repro.sim import ChaosExplorer, FaultAction, FaultSchedule
from repro.sim.chaos import ChaosScenario

ACCEPTANCE_SEEDS = (7, 21, 99)


def storage_scenario() -> ChaosScenario:
    return ChaosScenario(num_workers=4, dfs_table=True, block_size=256)


def acceptance_schedule(seed: int) -> FaultSchedule:
    return FaultSchedule(
        seed=seed,
        actions=(
            FaultAction("dfs_corrupt", rate=0.05),
            FaultAction("dfs_kill_datanode", site="1", at=0),
            FaultAction("dfs_enospc", rate=0.1),
        ),
    )


@pytest.mark.timeout(300)
def test_storage_chaos_smoke(benchmark):
    rounds = int(os.environ.get("STORAGE_CHAOS_ROUNDS", "6"))
    wall_budget_s = float(os.environ.get("STORAGE_CHAOS_WALL_S", "60"))
    base_seed = int(os.environ.get("STORAGE_CHAOS_SEED", "17"))

    def run():
        explorer = ChaosExplorer(scenario=storage_scenario(), base_seed=base_seed)
        acceptance = [
            explorer.run(acceptance_schedule(seed)) for seed in ACCEPTANCE_SEEDS
        ]
        report = explorer.explore(rounds=rounds, wall_budget_s=wall_budget_s)
        fingerprints = {
            explorer.run(acceptance_schedule(ACCEPTANCE_SEEDS[0])).fingerprint()
            for _ in range(2)
        }
        replay_fp = explorer.replay(
            acceptance_schedule(ACCEPTANCE_SEEDS[0]).to_json()
        ).fingerprint()
        return acceptance, report, fingerprints, replay_fp

    acceptance, report, fingerprints, replay_fp = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # The acceptance bar: survived, healthy, typed-only, every model trained.
    for seed, result in zip(ACCEPTANCE_SEEDS, acceptance):
        assert not result.failed, f"seed {seed}: {result.violations}"
        failed_sessions = [
            o["session_id"] for o in result.outcomes if o["error_type"] is not None
        ]
        assert not failed_sessions, f"seed {seed}: sessions failed {failed_sessions}"
        storage = result.stats["storage"]
        assert storage["fsck"]["healthy"], f"seed {seed}: {storage['fsck']}"
        kinds = {kind for kind, _site in result.events}
        assert kinds & {"replica_corrupt", "datanode_down", "enospc"}, (
            f"seed {seed}: schedule never bit ({kinds})"
        )

    # The sampled sweep: everything survived (or was shrunk for triage).
    summary = report.summary()
    assert summary["rounds_run"] >= 1, "the wall budget starved the search"
    unshrunk = [s.describe() for s, _ in report.failures]
    assert not unshrunk, f"sampled schedules violated invariants: {unshrunk}"

    # Determinism: identical (seed, schedule) replays identically, and the
    # JSON round trip (the minimized-artifact path) matches too.
    assert len(fingerprints) == 1
    assert replay_fp in fingerprints

    out_path = os.environ.get("BENCH_STORAGE_JSON")
    if out_path:
        doc = {
            "acceptance": [
                {
                    "seed": seed,
                    "schedule": r.schedule.describe(),
                    "events": len(r.events),
                    "storage": r.stats["storage"],
                    "violations": r.violations,
                }
                for seed, r in zip(ACCEPTANCE_SEEDS, acceptance)
            ],
            "search": summary,
            "determinism": {
                "runs": 2,
                "distinct_fingerprints": len(fingerprints),
                "json_replay_matches": replay_fp in fingerprints,
            },
        }
        with open(out_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)

    schedule_path = os.environ.get("STORAGE_MIN_SCHEDULE_JSON")
    if schedule_path and report.failures:
        entries = [json.loads(s.to_json()) for s, _ in report.failures]
        with open(schedule_path, "w") as fh:
            json.dump(entries, fh, indent=2, sort_keys=True)

    print()
    repaired = sum(r.stats["storage"]["repaired_blocks"] for r in acceptance)
    corrupt = sum(r.stats["storage"]["corrupt_replicas"] for r in acceptance)
    print(
        f"storage chaos: {len(ACCEPTANCE_SEEDS)} acceptance seeds survived, "
        f"{corrupt} corrupt replicas found, {repaired} blocks repaired; "
        f"search {summary['rounds_run']}/{summary['rounds_requested']} rounds, "
        f"{summary['total_faults_injected']} faults, "
        f"{len(report.failures)} invariant violations"
    )
