"""Methodology check: the reproduced *ratios* must not depend on the scale
of the generated workload.

The cost model converts observed bytes at any scale to paper-scale seconds;
if the methodology is sound, running the Figure-3 comparison on a 2x larger
generated workload must produce (nearly) the same speedup ratios — the
absolute byte counts double, the byte_scale halves, and the simulated times
meet in the middle.
"""

from repro.bench.common import make_bench_setup
from repro.bench.figure3 import run_figure3


def ratios(rows):
    by_approach = {r.approach: r.total_sim_seconds for r in rows}
    return (
        by_approach["naive"] / by_approach["insql"],
        by_approach["insql"] - by_approach["insql+stream"],
    )


def test_ratios_invariant_under_workload_scale(benchmark):
    def run():
        small = run_figure3(
            make_bench_setup(num_users=500, num_carts=5_000), iterations=1
        )
        large = run_figure3(
            make_bench_setup(num_users=1_000, num_carts=10_000), iterations=1
        )
        return ratios(small), ratios(large)

    (small_speedup, small_savings), (large_speedup, large_savings) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    # The In-SQL speedup ratio moves by < 5% across a 2x scale change...
    assert abs(small_speedup - large_speedup) / large_speedup < 0.05
    # ...and the absolute streaming savings (paper-scale seconds) by < 15%
    # (they depend on the transformed-size fraction, which drifts slightly
    # with the random join selectivity at different sizes).
    assert abs(small_savings - large_savings) / large_savings < 0.15
    print(
        f"\nspeedup {small_speedup:.2f}x vs {large_speedup:.2f}x; "
        f"savings {small_savings:.1f}s vs {large_savings:.1f}s across 2x scale"
    )
