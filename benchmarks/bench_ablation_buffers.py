"""Ablation A: stream buffer size (the paper fixes 4 KB without a sweep).

Shape: undersized buffers spill (backpressure hit the producer), the spill
fraction is monotonically non-increasing in buffer size, and data integrity
holds at every size.
"""

from repro.bench.ablation_buffers import (
    report,
    report_batch_rows,
    run_batch_rows_ablation,
    run_buffer_ablation,
)


def test_buffer_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_buffer_ablation(sizes=(256, 1024, 4096, 16384)),
        rounds=1,
        iterations=1,
    )
    # Same rows delivered at every buffer size.
    assert len({r.rows for r in rows}) == 1
    assert rows[0].rows > 0
    # Tiny buffers must spill; spilling shrinks as buffers grow.
    assert rows[0].spilled_bytes > 0
    spills = [r.spilled_bytes for r in rows]
    assert spills == sorted(spills, reverse=True)
    # A generously sized buffer should not spill at all.
    assert rows[-1].spilled_bytes == 0
    print()
    print(report(rows))


def test_batch_rows_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_batch_rows_ablation(batch_sizes=(1, 16, 256, 4096)),
        rounds=1,
        iterations=1,
    )
    # Same logical rows delivered at every block size, including the
    # per-row seed framing (batch_rows=1).
    assert len({r.rows for r in rows}) == 1
    assert rows[0].rows > 0
    # Byte accounting is framing-invariant: every block size charges the
    # ledger the seed's per-row framing bytes, so simulated time is
    # identical across the sweep and only wall clock moves.
    assert len({r.streamed_bytes for r in rows}) == 1
    print()
    print(report_batch_rows(rows))
