"""Ablation D: direct streaming vs the Kafka-like broker transfer (§8).

Shape: identical data delivered; the broker pays its decoupled consume
phase against direct streaming; a replay of the retained topic costs a
fraction of the full pipeline (it skips SQL + transform entirely).
"""

from repro.bench.ablation_broker import report, run_broker_ablation


def test_broker_ablation(benchmark, small_bench_setup):
    rows = benchmark.pedantic(
        lambda: run_broker_ablation(small_bench_setup), rounds=1, iterations=1
    )
    by_variant = {r.variant: r for r in rows}

    # Identical row counts everywhere.
    assert len({r.rows_delivered for r in rows}) == 1
    assert rows[0].rows_delivered > 0

    # The broker's non-overlapped consume phase costs real time.
    assert (
        by_variant["broker (no cache)"].total_sim_seconds
        > by_variant["stream (no cache)"].total_sim_seconds
    )
    assert (
        by_variant["broker (full cache)"].total_sim_seconds
        > by_variant["stream (full cache)"].total_sim_seconds
    )

    # Replay skips SQL+transform: cheaper than any no-cache pipeline.
    assert (
        by_variant["replay retained topic"].total_sim_seconds
        < by_variant["stream (no cache)"].total_sim_seconds
    )

    # Broker byte accounting is live on broker variants only.
    assert by_variant["broker (no cache)"].broker_bytes > 0
    assert by_variant["stream (no cache)"].broker_bytes == 0

    # The replay consumes exactly the logical bytes the cached-broker run
    # produced: ledger accounting is invariant under RowBlock framing, so
    # broker.out of the re-read equals broker.in of the produce.
    assert (
        by_variant["replay retained topic"].broker_bytes
        == by_variant["broker (full cache)"].broker_bytes
    )

    print()
    print(report(rows))
