"""Multi-tenant serving smoke: interleaved sessions stay correct and bounded.

Acceptance bars for the shared-worker-pool serving stack:

- A ~16-session closed-loop run at a mid-size admission cap completes with
  every session's trained weights bit-identical to a solo re-run of the
  same seed (the isolation bar — concurrency may change timing, never
  results).
- p99 session-completion latency stays under ``MULTITENANT_P99_CEILING``
  seconds (default 30; CI's shared runners can relax it via the env var).
- ``BENCH_MULTITENANT_JSON`` (when set) receives the JSON results artifact.
"""

import os

from repro.bench.multitenant import persist_results, report, run_acceptance, run_cap_sweep


def test_multitenant_smoke(benchmark):
    ceiling = float(os.environ.get("MULTITENANT_P99_CEILING", "30.0"))
    sessions = int(os.environ.get("MULTITENANT_SMOKE_SESSIONS", "16"))

    def run():
        rows = run_cap_sweep(caps=(1, 4), num_sessions=sessions, num_clients=8)
        acceptance, load_report = run_acceptance(
            num_sessions=sessions, num_clients=8, cap=4
        )
        return rows, acceptance, load_report

    rows, acceptance, load_report = benchmark.pedantic(run, rounds=1, iterations=1)

    assert acceptance.weight_identical, (
        "interleaved sessions diverged from solo baselines: "
        f"{[o.session_id for o in load_report.outcomes if o.error]}"
    )
    assert not load_report.failures
    assert acceptance.p99_s <= ceiling, (
        f"p99 session latency {acceptance.p99_s:.2f}s exceeds "
        f"ceiling {ceiling:.2f}s"
    )
    # cap=1 must strictly serialize: with 8 clients offering sessions, all
    # but the first admitted one pass through the admission queue.
    serialized = rows[0]
    assert serialized.max_concurrent == 1
    assert serialized.sessions_queued > 0

    out_path = os.environ.get("BENCH_MULTITENANT_JSON")
    if out_path:
        persist_results(rows, out_path, acceptance=acceptance)
    print()
    print(report(rows, acceptance))
