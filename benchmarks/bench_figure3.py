"""Figure 3 benchmark: naive vs insql vs insql+stream.

Benchmarks the three connection strategies end-to-end (wall-clock of the
scaled run) and asserts the paper's *shape* on the simulated paper-scale
timings: insql beats naive by ~1.7x, streaming removes most of the ~46 s
DFS-ingest stage, win order stable, and all three hand the ML system the
exact same dataset.
"""

from repro.bench.figure3 import report, run_figure3


def _by_approach(rows):
    return {r.approach: r for r in rows}


def test_figure3(benchmark, bench_setup):
    rows = _by_approach(benchmark.pedantic(
        lambda: run_figure3(bench_setup, iterations=2), rounds=1, iterations=1
    ))
    naive = rows["naive"].total_sim_seconds
    insql = rows["insql"].total_sim_seconds
    stream = rows["insql+stream"].total_sim_seconds

    # Win order: insql+stream < insql < naive.
    assert stream < insql < naive

    # Paper: In-SQL transformation gives 1.7x over naive.
    speedup = naive / insql
    assert 1.4 <= speedup <= 2.1, f"insql speedup {speedup:.2f}x out of paper shape"

    # Paper: streaming saves ~43 s, most of the ~46 s DFS read.
    savings = insql - stream
    ingest = rows["insql"].stages["input for ml"]
    assert savings > 0.5 * ingest
    assert 20.0 <= savings <= 70.0, f"stream savings {savings:.1f}s out of shape"

    # Paper: reading the transformed data from HDFS takes ~46 s.
    assert 35.0 <= ingest <= 60.0, f"DFS ingest {ingest:.1f}s out of shape"

    # All three strategies must hand the ML system identical data.
    datasets = {
        name: sorted(
            (lp.label, tuple(lp.features))
            for lp in row.result.ml_result.dataset.collect()
        )
        for name, row in rows.items()
    }
    assert datasets["naive"] == datasets["insql"] == datasets["insql+stream"]
    assert len(datasets["naive"]) > 0

    print()
    print(report(list(rows.values())))


def test_figure3_naive_only(benchmark, small_bench_setup):
    wl = small_bench_setup.workload
    result = benchmark.pedantic(
        lambda: small_bench_setup.pipeline.run_naive(
            wl.prep_sql, wl.spec, "svm_with_sgd", {"iterations": 2}
        ),
        rounds=2,
        iterations=1,
    )
    assert result.ml_result.dataset.count() > 0


def test_figure3_insql_only(benchmark, small_bench_setup):
    wl = small_bench_setup.workload
    result = benchmark.pedantic(
        lambda: small_bench_setup.pipeline.run_insql(
            wl.prep_sql, wl.spec, "svm_with_sgd", {"iterations": 2}
        ),
        rounds=2,
        iterations=1,
    )
    assert result.ml_result.dataset.count() > 0


def test_figure3_stream_only(benchmark, small_bench_setup):
    wl = small_bench_setup.workload
    result = benchmark.pedantic(
        lambda: small_bench_setup.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "svm_with_sgd", {"iterations": 2}
        ),
        rounds=2,
        iterations=1,
    )
    assert result.ml_result.dataset.count() > 0
