"""Ablation C: cache-reuse decisions across a family of follow-up queries.

Shape: the rewriter classifies every query in the family — including the
paper's own §5.1 and §5.2 examples — into the expected reuse tier, and the
tiers order by cost: full_cache <= recode_map_cache <= no_cache.
"""

from repro.bench.ablation_rewriter import report, run_rewriter_ablation


def test_rewriter_ablation(benchmark, small_bench_setup):
    rows = benchmark.pedantic(
        lambda: run_rewriter_ablation(small_bench_setup), rounds=1, iterations=1
    )
    for row in rows:
        assert row.actual == row.expected, (
            f"{row.description}: expected {row.expected}, got {row.actual}"
        )
    # Reuse tiers must order by cost for the *same* query (first vs third
    # rows are the identical-query full-cache hit and the §5.2 partial hit).
    identical = rows[0]
    no_reuse = next(r for r in rows if r.actual == "no_cache")
    partial = next(r for r in rows if r.actual == "recode_map_cache")
    assert identical.total_sim_seconds < partial.total_sim_seconds
    assert partial.total_sim_seconds < no_reuse.total_sim_seconds
    print()
    print(report(rows))
