"""Raw stream-channel throughput: per-row vs RowBlock vs columnar framing.

Acceptance bars for the two framing refactors, on a single channel moving
the identical row sequence:

- RowBlock: 256-row blocks must at least halve wall clock against the
  per-row seed path.
- Columnar: one typed ``C`` frame must beat the per-row seed path by the
  ``COLUMNAR_SPEEDUP_FLOOR`` factor (default 8x; CI's shared runners set a
  relaxed floor via the env var and publish the JSON results artifact).
"""

import os

from repro.bench.micro_transfer import (
    persist_results,
    report,
    run_transfer_microbench,
)


def test_row_block_speedup(benchmark):
    results = benchmark.pedantic(
        lambda: run_transfer_microbench(num_rows=100_000, batch_sizes=(1, 256)),
        rounds=1,
        iterations=1,
    )
    per_row, blocked = results
    assert per_row.rows == blocked.rows == 100_000
    speedup = per_row.wall_seconds / blocked.wall_seconds
    assert speedup >= 2.0, f"row-block speedup only {speedup:.2f}x"
    print()
    print(report(results))


def test_columnar_speedup(benchmark):
    floor = float(os.environ.get("COLUMNAR_SPEEDUP_FLOOR", "8.0"))
    results = benchmark.pedantic(
        lambda: run_transfer_microbench(
            num_rows=100_000, batch_sizes=(1, 256), columnar=True
        ),
        rounds=1,
        iterations=1,
    )
    per_row, _blocked, columnar = results
    assert columnar.mode == "columnar"
    assert per_row.rows == columnar.rows == 100_000
    out_path = os.environ.get("BENCH_COLUMNAR_JSON")
    if out_path:
        persist_results(results, out_path)
    speedup = per_row.wall_seconds / columnar.wall_seconds
    assert speedup >= floor, f"columnar speedup only {speedup:.2f}x (floor {floor}x)"
    print()
    print(report(results))
