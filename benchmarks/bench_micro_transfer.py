"""Raw stream-channel throughput: per-row framing vs RowBlock framing.

The acceptance bar for the row-block refactor: moving the same rows in
256-row blocks must at least halve wall clock against the per-row seed
path on a single channel.
"""

from repro.bench.micro_transfer import report, run_transfer_microbench


def test_row_block_speedup(benchmark):
    results = benchmark.pedantic(
        lambda: run_transfer_microbench(num_rows=100_000, batch_sizes=(1, 256)),
        rounds=1,
        iterations=1,
    )
    per_row, blocked = results
    assert per_row.rows == blocked.rows == 100_000
    speedup = per_row.wall_seconds / blocked.wall_seconds
    assert speedup >= 2.0, f"row-block speedup only {speedup:.2f}x"
    print()
    print(report(results))
