"""Figure 4 benchmark: caching effect under insql+stream.

Paper shape: cache recode maps ~1.5x, cache fully transformed result ~2.2x,
both versus the no-cache run; and the cache variants deliver the ML system
the identical dataset.
"""

from repro.bench.figure4 import report, run_figure4


def test_figure4(benchmark, bench_setup):
    rows = benchmark.pedantic(
        lambda: run_figure4(bench_setup, iterations=2), rounds=1, iterations=1
    )
    by_variant = {r.variant: r for r in rows}
    no_cache = by_variant["no cache"].total_sim_seconds
    with_maps = by_variant["cache recode maps"].total_sim_seconds
    with_view = by_variant["cache transformed result"].total_sim_seconds

    # Win order: full cache < recode-map cache < no cache.
    assert with_view < with_maps < no_cache

    # The rewriter must actually have taken the cached paths.
    assert by_variant["cache recode maps"].rewrite_kind == "recode_map_cache"
    assert by_variant["cache transformed result"].rewrite_kind == "full_cache"

    # Paper: 1.5x and 2.2x.
    maps_speedup = no_cache / with_maps
    view_speedup = no_cache / with_view
    assert 1.25 <= maps_speedup <= 1.85, f"recode-map speedup {maps_speedup:.2f}x"
    assert 1.8 <= view_speedup <= 2.8, f"full-cache speedup {view_speedup:.2f}x"

    # All variants must hand the ML system identical data.
    datasets = [
        sorted(
            (lp.label, tuple(lp.features))
            for lp in r.result.ml_result.dataset.collect()
        )
        for r in rows
    ]
    assert datasets[0] == datasets[1] == datasets[2]
    assert len(datasets[0]) > 0

    print()
    print(report(rows))


def test_recode_map_cache_only(benchmark, small_bench_setup):
    wl = small_bench_setup.workload
    small_bench_setup.pipeline.populate_caches(
        wl.prep_sql, wl.spec, cache_recode_map=True, cache_transformed=False
    )
    result = benchmark.pedantic(
        lambda: small_bench_setup.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "noop", use_cache=True
        ),
        rounds=2,
        iterations=1,
    )
    assert result.rewrite_kind == "recode_map_cache"


def test_full_cache_only(benchmark, small_bench_setup):
    wl = small_bench_setup.workload
    small_bench_setup.pipeline.populate_caches(
        wl.prep_sql, wl.spec, cache_recode_map=True, cache_transformed=True
    )
    result = benchmark.pedantic(
        lambda: small_bench_setup.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "noop", use_cache=True
        ),
        rounds=2,
        iterations=1,
    )
    assert result.rewrite_kind == "full_cache"
