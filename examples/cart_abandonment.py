"""Cart abandonment: comparing classifiers on one cached transformation.

This is the workflow §5.1 motivates: "an analyst wants to run a number of
classification algorithms, such as SVM, logistic regression, naive Bayes
and decision trees, to compare the quality of different classifiers on a
particular dataset."  The data preparation + transformation runs once; the
fully transformed result is cached; every subsequent classifier streams the
cached view without re-running the query or the recoding passes.

Run:  python examples/cart_abandonment.py
"""


from repro import make_deployment
from repro.ml.validation import evaluate_classifier, train_test_split
from repro.workloads import generate_retail

CLASSIFIERS = [
    ("svm_with_sgd", {"iterations": 300, "step": 1.0, "reg_param": 0.001}),
    ("logistic_regression", {"iterations": 400, "step": 1.5}),
    ("naive_bayes", {"smoothing": 1.0}),
    ("decision_tree", {"max_depth": 5}),
]

# The preparation query scales age and amount into a solver-friendly range —
# data preparation in SQL, exactly where the paper wants it.
PREP_SQL = (
    "SELECT U.age / 25.0 AS age, U.gender, C.amount / 100.0 AS amount, C.abandoned "
    "FROM carts C, users U "
    "WHERE C.userid = U.userid AND U.country = 'USA'"
)


def main() -> None:
    dep = make_deployment(block_size=256 * 1024)
    wl = generate_retail(dep.engine, dep.dfs, num_users=2_000, num_carts=20_000)
    dep.pipeline.byte_scale = wl.byte_scale

    # Build both §5 cache artifacts once: the recode maps and the fully
    # transformed (recoded) result as a materialized view.
    dep.pipeline.populate_caches(
        PREP_SQL, wl.spec, cache_recode_map=True, cache_transformed=True
    )

    print(f"{'classifier':<22} {'rewrite':<18} {'sim total':>9}  "
          f"{'accuracy':>8} {'precision':>9} {'recall':>7} {'f1':>6}   (held-out)")
    for command, args in CLASSIFIERS:
        result = dep.pipeline.run_insql_stream(
            PREP_SQL, wl.spec, command, args, use_cache=True
        )
        # The pipeline delivered the full dataset; evaluate on a held-out
        # split (retrain on the training part so scores are honest).
        train, test = train_test_split(result.ml_result.dataset, 0.3, seed=17)
        model = dep.ml.trainer(command)(train, args)
        scores = evaluate_classifier(model, test)
        print(
            f"{command:<22} {result.rewrite_kind:<18} "
            f"{result.total_sim_seconds:8.1f}s  "
            f"{scores.accuracy:8.3f} {scores.precision:9.3f} "
            f"{scores.recall:7.3f} {scores.f1:6.3f}"
        )

    hits = dep.pipeline.cache.stats
    print()
    print(
        f"cache: {hits.transformed_hits} full hits, "
        f"{hits.recode_map_hits} recode-map hits, "
        f"{hits.transformed_misses} misses"
    )
    print("every classifier after the first reused the cached transformed "
          "result — the query, recoding, and dummy coding ran exactly once.")


if __name__ == "__main__":
    main()
