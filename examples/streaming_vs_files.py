"""Streaming vs files: regenerate the paper's Figure 3 comparison.

Runs the same preparation + transformation + SVM workload through the three
connection strategies and prints the stage breakdown the paper charts —
naive (three materializations), insql (one DFS hop), insql+stream (fully
pipelined) — in simulated paper-scale seconds.

Run:  python examples/streaming_vs_files.py
"""

from repro.bench.common import make_bench_setup
from repro.bench.figure3 import report, run_figure3
from repro.bench.figure4 import report as report4, run_figure4


def main() -> None:
    print("generating the retail workload and running all three approaches...")
    setup = make_bench_setup()
    rows = run_figure3(setup)
    print()
    print(report(rows))

    print()
    print("now the caching variants (Figure 4)...")
    print()
    rows4 = run_figure4(setup)
    print(report4(rows4))

    stream_result = next(r for r in rows if r.approach == "insql+stream").result
    ledger = setup.deployment.cluster.ledger.snapshot()
    print()
    print("ledger highlights (observed bytes at the scaled run):")
    for category in ("sql.scan", "dfs.write.local", "mr.read", "stream.sent", "ml.ingest"):
        print(f"  {category:<18} {ledger.get(category, 0):>12,} B")
    print()
    print("note how insql+stream moved zero bytes through the DFS between "
          "the SQL and ML systems, while naive wrote and re-read the data "
          "twice.")
    print(f"(streamed rows reached the ML system over "
          f"{stream_result.ml_result.ingest_stats.num_splits} parallel channels)")


if __name__ == "__main__":
    main()
