"""Quickstart: the paper's example scenario, end to end, in ~30 lines.

Builds the simulated 5-server deployment, generates the retail warehouse
(carts + users on the DFS), and runs the paper's §1 preparation query
through In-SQL transformation and parallel streaming transfer straight into
an SVM — no files between the SQL and ML systems.

Run:  python examples/quickstart.py
"""

from repro import make_deployment
from repro.workloads import generate_retail


def main() -> None:
    # 1 head node + 4 workers, DFS with 3-way replication, BigSQL engine,
    # MLlib-like ML system, transfer coordinator with 4 KB buffers.
    dep = make_deployment(block_size=256 * 1024)

    # The paper's warehouse: carts (1B rows / 56 GB at paper scale) and
    # users (10M rows), stored as text on the DFS.  Scaled down here; the
    # byte_scale maps observed bytes back to paper scale for timing.
    wl = generate_retail(dep.engine, dep.dfs, num_users=1_000, num_carts=10_000)
    dep.pipeline.byte_scale = wl.byte_scale

    print("preparation query (§1):")
    print(" ", wl.prep_sql)
    print("transformation spec   :", wl.spec)
    print()

    # insql+stream: recode + dummy-code inside the SQL engine via table
    # UDFs, stream the result to the ML system through the coordinator.
    result = dep.pipeline.run_insql_stream(
        wl.prep_sql, wl.spec, command="svm_with_sgd", args={"iterations": 10}
    )

    print(result.breakdown())
    print()
    model = result.ml_result.model
    stats = result.ml_result.ingest_stats
    print(f"rows delivered to ML : {stats.records} over {stats.num_splits} channels")
    print(f"SVM weights          : {model.weights.round(4)}")
    print(f"SVM intercept        : {model.intercept:.4f}")


if __name__ == "__main__":
    main()
