"""Visitor segmentation: an unsupervised pipeline on a second workload.

Everything in the paper's pipeline works identically when the downstream
algorithm is unsupervised: the preparation query has no label column, the
recode/dummy UDFs still run inside the SQL engine, and the streamed rows
reach k-means as plain feature vectors.  The clickstream workload also
exercises wider categoricals (4-level device) and a different join shape
than the retail scenario.

Run:  python examples/visitor_segmentation.py
"""

import numpy as np

from repro import make_deployment
from repro.workloads.clickstream import generate_clickstream


def main() -> None:
    dep = make_deployment(block_size=256 * 1024)
    wl = generate_clickstream(dep.engine, dep.dfs, num_visitors=800, num_sessions=8_000)
    dep.pipeline.byte_scale = wl.byte_scale

    print("segmentation query (no label):")
    print(" ", wl.segment_sql)
    print("spec:", wl.segment_spec)
    print()

    result = dep.pipeline.run_insql_stream(
        wl.segment_sql, wl.segment_spec, "kmeans", {"k": 3, "seed": 4}
    )
    model = result.ml_result.model
    print(result.breakdown())
    print()
    print(f"k-means converged in {model.iterations_run} iterations, "
          f"cost {model.cost:.1f}")
    # Columns: tenure, plan_basic, plan_free, plan_pro, pages, duration
    names = ["tenure", "plan_basic", "plan_free", "plan_pro", "pages", "duration"]
    print(f"{'segment':>7}  " + "  ".join(f"{n:>10}" for n in names))
    for i, center in enumerate(model.centers):
        print(f"{i:>7}  " + "  ".join(f"{v:10.2f}" for v in center))

    # Which plan dominates each segment?
    X = np.stack([np.asarray(r, float) for r in result.ml_result.dataset.collect()])
    assignment = model.predict_many(X)
    print()
    for i in range(3):
        member = X[assignment == i]
        if len(member) == 0:
            continue
        plan = names[1 + int(np.argmax(member[:, 1:4].mean(axis=0)))]
        print(f"segment {i}: {len(member)} sessions, avg pages "
              f"{member[:, 4].mean():.1f}, dominant {plan}")


if __name__ == "__main__":
    main()
