"""Extensibility: plug a custom ML algorithm and a custom coding scheme in.

The paper's core generality claim: the solution must work with "any big ML
system" and "be easily extensible to any future ML system".  Here we

1. register a *custom* training algorithm (an averaged perceptron) with the
   ML system under its own command name — the SQL side streams to it with
   zero changes;
2. use *effect coding* (§2's "less common transformation") instead of dummy
   coding, composed at the SQL surface by the same TABLE(...) mechanism;
3. reuse the cached recode maps for a §5.2-style follow-up query.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro import make_deployment
from repro.ml.dataset import Dataset
from repro.ml import metrics
from repro.workloads import generate_retail


class AveragedPerceptronModel:
    """A minimal linear model trained by the averaged perceptron rule."""

    def __init__(self, weights: np.ndarray, intercept: float):
        self.weights = weights
        self.intercept = intercept

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        return (X @ self.weights + self.intercept >= 0).astype(int)


def train_averaged_perceptron(dataset: Dataset, args: dict) -> AveragedPerceptronModel:
    """Custom trainer: per-partition passes with weight averaging."""
    epochs = int(args.get("epochs", 5))
    parts = dataset.partition_arrays()
    dim = parts[0][0].shape[1]
    w = np.zeros(dim)
    b = 0.0
    w_sum = np.zeros(dim)
    b_sum = 0.0
    updates = 0
    for _ in range(epochs):
        for X, y in parts:
            signed = np.where(y > 0.5, 1.0, -1.0)
            for xi, yi in zip(X, signed):
                if yi * (xi @ w + b) <= 0:
                    w = w + yi * xi
                    b = b + yi
                w_sum += w
                b_sum += b
                updates += 1
    if updates:
        w, b = w_sum / updates, b_sum / updates
    return AveragedPerceptronModel(w, float(b))


def main() -> None:
    dep = make_deployment(block_size=256 * 1024)
    wl = generate_retail(dep.engine, dep.dfs, num_users=1_500, num_carts=15_000)
    dep.pipeline.byte_scale = wl.byte_scale

    # 1. Plug the custom algorithm into the ML system.
    dep.ml.register_algorithm("averaged_perceptron", train_averaged_perceptron)

    prep = (
        "SELECT U.age, U.gender, C.amount / 100.0 AS amount, C.abandoned "
        "FROM carts C, users U "
        "WHERE C.userid = U.userid AND U.country = 'USA'"
    )
    result = dep.pipeline.run_insql_stream(
        prep, wl.spec, "averaged_perceptron", {"epochs": 3}
    )
    X, y = result.ml_result.dataset.to_arrays()
    predictions = result.ml_result.model.predict_many(X)
    print(f"custom algorithm over streamed data: "
          f"{result.ml_result.dataset.count()} rows, "
          f"accuracy {metrics.accuracy(y, predictions):.3f}")

    # 2. Effect coding through the same UDF surface the paper describes.
    plan = dep.pipeline.rewriter_no_cache.plan(prep, wl.spec)
    stage = dep.pipeline._run_pass1(plan, wl.spec)  # builds the recode map
    effect_sql = (
        f"SELECT * FROM TABLE(effect_code((SELECT * FROM TABLE(recode(({prep}), "
        f"'{plan.map_handle}', 'gender', 'abandoned')) AS r), "
        f"'{plan.map_handle}', 'gender')) AS e LIMIT 5"
    )
    print("\neffect-coded sample (gender -> K-1 contrast columns):")
    table = dep.engine.execute(effect_sql)
    print(" ", table.schema.names)
    for row in table.all_rows():
        print(" ", row)

    # 3. §5.2 follow-up: cache the recode maps, then a new query with an
    # extra year predicate reuses them (pass 1 skipped).
    dep.pipeline.populate_caches(prep, wl.spec, cache_recode_map=True)
    followup = (
        "SELECT U.age, U.gender, C.amount / 100.0 AS amount, C.abandoned "
        "FROM carts C, users U "
        "WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014"
    )
    reuse = dep.pipeline.run_insql_stream(
        followup, wl.spec, "averaged_perceptron", {"epochs": 3}, use_cache=True
    )
    print(f"\nfollow-up query rewrite: {reuse.rewrite_kind} "
          f"(recoding pass 1 skipped), total {reuse.total_sim_seconds:.1f}s simulated")


if __name__ == "__main__":
    main()
