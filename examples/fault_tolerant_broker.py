"""Fault-tolerant transfer via the Kafka-like message broker (§8).

The paper's §6 notes that with direct streaming, "when the data transfer
between a SQL worker and an ML worker fails ... we need to notify the big
SQL system to restart the SQL worker and simultaneously tell the big ML
system to restart all the ML workers corresponding to the SQL worker" —
and §8 proposes a Kafka-like broker as the alternative that "would
guarantee at least one read, in case of failures" and "could also be the
system to cache the data".

This example demonstrates all three stories:

1. the coordinated restart plan the direct-stream coordinator exposes;
2. at-least-once recovery through the broker: an ML consumer crashes
   mid-ingest and a restarted job resumes from committed offsets;
3. the retained topic replayed by a second ML job — broker as cache.

Run:  python examples/fault_tolerant_broker.py
"""

from repro import make_deployment
from repro.broker.consumer import BrokerConsumer
from repro.broker.inputformat import BrokerInputFormat
from repro.iofmt.inputformat import JobConf
from repro.workloads import generate_retail


def main() -> None:
    dep = make_deployment(block_size=256 * 1024)
    wl = generate_retail(dep.engine, dep.dfs, num_users=800, num_carts=8_000)
    dep.pipeline.byte_scale = wl.byte_scale

    # ------------------------------------------------------------- story 1
    print("=== direct streaming: §6 coordinated restart plan ===")
    result = dep.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
    # pull the most recent session id back out of the coordinator via a new
    # failure report on a fresh transfer:
    dep.coordinator.create_session("demo", command="noop",
                                   conf_props={"record.format": "raw"})
    dep.engine.query_rows(
        f"SELECT * FROM TABLE(stream_transfer(({wl.prep_sql}), 'demo')) AS s"
    )
    dep.coordinator.wait_result("demo")
    plan = dep.coordinator.notify_channel_failure("demo", 2, "socket reset by peer")
    print(f"SQL worker 2 failed -> restart plan: restart SQL worker "
          f"{plan['restart_sql_worker']}, restart ML workers "
          f"{plan['restart_ml_workers']}")
    print("(all endpoints of the pairing restart together, per §6)\n")

    # ------------------------------------------------------------- story 2
    print("=== broker transfer: at-least-once recovery (§8) ===")
    broker_run = dep.pipeline.run_insql_broker(
        wl.prep_sql, wl.spec, "noop", keep_topic=True, consumer_group="training"
    )
    topic = broker_run.broker_topic
    info = dep.broker.topic_info(topic)
    print(f"SQL produced {info.total_records} rows into topic {topic!r} "
          f"({info.num_partitions} partitions)")

    # Simulate a crash: a consumer in a NEW group processes two batches of
    # partition 0 but only commits the first, then dies.
    consumer = BrokerConsumer(dep.broker, topic, 0, group="crashy", batch_size=8)
    batch1, _ = consumer.poll()
    consumer.commit()
    batch2, _ = consumer.poll()  # processed but never committed
    print(f"consumer crashed after processing {len(batch1) + len(batch2)} rows, "
          f"committed only {len(batch1)}")

    conf = JobConf(
        {"broker.topic": topic, "broker.group": "crashy", "record.format": "raw"},
        broker=dep.broker,
    )
    recovered = dep.ml.run_job("noop", {}, BrokerInputFormat(), conf)
    print(f"restarted job consumed {recovered.dataset.count()} rows "
          f"(the {len(batch2)} uncommitted ones re-delivered: at-least-once)\n")

    # ------------------------------------------------------------- story 3
    print("=== broker as cache: replaying the retained topic ===")
    replay_conf = JobConf(
        {"broker.topic": topic, "broker.group": "second-analysis",
         "record.format": "labeled_csv", "label.index": 4, "label.offset": 1.0},
        broker=dep.broker,
    )
    replay = dep.ml.run_job("naive_bayes", {}, BrokerInputFormat(), replay_conf)
    print(f"second ML job (naive Bayes) re-read {replay.dataset.count()} rows "
          "from the topic — no SQL query, no recoding, no transform re-run")
    dep.broker.delete_topic(topic)


if __name__ == "__main__":
    main()
